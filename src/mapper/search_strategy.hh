/**
 * @file
 * Pluggable search strategies over the mapspace IR.
 *
 * A strategy is a candidate generator: the driver (`Mapper` /
 * `ParallelMapper`) repeatedly asks it to `propose` a batch of
 * candidates, evaluates the batch through `BatchEvaluator` (so
 * deduplication, dense-prefix grouping, and the worker pool apply
 * during search), feeds scalar objectives back via `observe`, and
 * keeps the (objective, index)-lexicographic best. The scalars come
 * from the driver's `ObjectiveSpec::scalarize` (mapper/objective.hh)
 * — strategies never see metric vectors, so they work unchanged under
 * every spec form (for the default EDP spec the feedback is
 * bit-identical to the historical scalar objective). Splitting
 * generation from evaluation is what makes the strategies
 * interchangeable and the parallelism strategy-agnostic: every
 * strategy is deterministic given its feedback, and the feedback is
 * bit-identical at any thread count.
 *
 * Shipped strategies (docs/search.md is the full guide):
 *  - `RandomSearch` — seeded sampling via the IR; bit-identical to the
 *    pre-IR mapper on unconstrained spaces (same seed -> candidate
 *    derivation), rejection-free under constraints.
 *  - `ExhaustiveSearch` — walks `MapSpace::mappingAt`; auto-selected
 *    by the driver when the pruned space fits the sample budget, which
 *    upgrades the search from sampled to provably optimal.
 *  - `HybridSearch` — random warmup, then greedy hill-climbing over
 *    `MapSpace::neighbors` with random restarts when a local optimum
 *    stalls.
 *  - `AnnealingSearch` — simulated annealing: independent Metropolis
 *    chains over `MapSpace::Point` moves with a shared geometric
 *    temperature schedule.
 *  - `GeneticSearch` — a population evolved by tournament selection,
 *    axis-wise `MapSpace::crossover`, and neighbor-move mutation; all
 *    offspring are in-space by construction.
 *  - `HierarchicalSearch` — coarse-then-refine for billion-point
 *    spaces: sweep the tiling x keep quotient first (one canonical
 *    representative per cell via `MapSpace::coarsePoints`), then
 *    refine the winners' fine axes by greedy neighborhood descent.
 *
 * Strategies may also be seeded with starting points re-encoded from a
 * `WarmStartPool` (mapper/warm_start.hh) via `warmStart`, which is how
 * DSE sweep drivers reuse elite mappings across neighboring design
 * points.
 */

#ifndef SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH
#define SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH

#include <memory>

#include "mapper/mapspace.hh"

namespace sparseloop {

/** Which search strategy a `Mapper` runs. */
enum class SearchStrategyKind
{
    /** Exhaustive when the pruned space fits the sample budget
     *  (exactness for free), random otherwise. */
    Auto,
    Random,
    Exhaustive,
    Hybrid,
    Annealing,
    Genetic,
    /** Coarse-then-refine over the tiling x keep quotient space. */
    Hierarchical,
};

/** `AnnealingSearch` knobs (docs/search.md has usage guidance). */
struct AnnealingOptions
{
    /**
     * Independent Metropolis chains advanced in lockstep; also the
     * evaluation-round size. More chains mean more exploration and
     * more parallel evaluation work per round, but fewer cooling
     * steps within a fixed budget.
     */
    int chains = 8;
    /**
     * Initial temperature on the relative-worsening scale: a move
     * that worsens the incumbent objective by `initial_temperature`
     * (as a fraction of its value) is accepted with probability 1/e
     * at the start of the schedule.
     */
    double initial_temperature = 0.25;
    /** Temperature the geometric schedule reaches as the sample
     *  budget runs out (used when `cooling == 0`). */
    double final_temperature = 1e-3;
    /**
     * Per-round geometric cooling factor in (0, 1]; 0 (the default)
     * derives it from the sample budget so the schedule spans
     * initial -> final temperature exactly.
     */
    double cooling = 0.0;
};

/** `GeneticSearch` knobs (docs/search.md has usage guidance). */
struct GeneticOptions
{
    /** Population size; generation 0 evaluates this many points
     *  (warm-start elites first, seeded samples after). */
    int population = 24;
    /** Members carried into the next generation unchanged and without
     *  re-evaluation; clamped to `population - 1`. */
    int elites = 4;
    /** Tournament size for parent selection (clamped to >= 1). */
    int tournament = 3;
    /** Probability that an offspring takes one uniformly drawn
     *  neighbor move after crossover. */
    double mutation_rate = 0.25;
};

/** `HierarchicalSearch` knobs (docs/search.md has usage guidance). */
struct HierarchicalOptions
{
    /**
     * Proposals spent on the coarse phase; 0 derives half the sample
     * budget. The coarse phase scores one representative mapping per
     * (tiling, keep-mask combination) quotient cell — default loop
     * order, first spatial candidate — sub-sampling both axes evenly
     * when the quotient exceeds the allowance.
     */
    std::int64_t coarse_budget = 0;
    /** Coarse winners refined concurrently by greedy neighborhood
     *  descent (clamped to >= 1). */
    int refine_width = 4;
    /** Keep-mask combinations scored per tiling in the coarse phase
     *  (strided evenly across the joint keep axis; clamped to >= 1). */
    int keeps_per_tiling = 8;
};

/** Per-strategy tuning handed through `makeSearchStrategy`. */
struct SearchTuning
{
    /** `HybridSearch` warmup/restart window; 0 = budget / 4. */
    std::int64_t hybrid_warmup = 0;
    AnnealingOptions annealing;
    GeneticOptions genetic;
    HierarchicalOptions hierarchical;
};

/** One proposed candidate: a mapping plus its global proposal index
 *  (the deterministic tie-break for equal objectives). */
struct SearchCandidate
{
    std::int64_t index = 0;
    Mapping mapping;
};

/**
 * Candidate-generation interface. Not thread-safe: one driver owns and
 * drives a strategy sequentially; parallelism lives in the batched
 * evaluation of whatever the strategy proposes.
 */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    virtual const char *name() const = 0;

    /**
     * Propose up to @p max_count candidates. Indices are unique and
     * strictly increasing across the whole search. An empty batch
     * means the strategy is exhausted and the search stops early.
     */
    virtual std::vector<SearchCandidate> propose(int max_count) = 0;

    /**
     * Feedback for the batch returned by the previous `propose` call:
     * `objectives[i]` is the scalarized objective of `batch[i]` under
     * the driver's `ObjectiveSpec` (+infinity for invalid candidates
     * and for candidates a constrained spec rejects; lower is
     * better).
     */
    virtual void observe(const std::vector<SearchCandidate> &batch,
                         const std::vector<double> &objectives);

    /**
     * Seed the strategy with in-space starting points — typically
     * elite mappings from a `WarmStartPool` re-encoded into this
     * search's `MapSpace` — before the first `propose` call. Seeded
     * points are proposed (and therefore evaluated and counted
     * against the budget) like any other candidate. The default
     * ignores them; `RandomSearch` and `ExhaustiveSearch` gain
     * nothing from starting points, while `HybridSearch`,
     * `AnnealingSearch`, and `GeneticSearch` override this.
     */
    virtual void warmStart(const std::vector<MapSpace::Point> &points);
};

/** Seeded random sampling through the IR (never exhausts). */
class RandomSearch : public SearchStrategy
{
  public:
    RandomSearch(const MapSpace &space, std::uint64_t seed);

    const char *name() const override { return "random"; }
    std::vector<SearchCandidate> propose(int max_count) override;

  private:
    const MapSpace &space_;
    std::uint64_t seed_;
    std::int64_t next_ = 0;
};

/** Duplicate-free walk of an enumerable space. */
class ExhaustiveSearch : public SearchStrategy
{
  public:
    explicit ExhaustiveSearch(const MapSpace &space);

    const char *name() const override { return "exhaustive"; }
    std::vector<SearchCandidate> propose(int max_count) override;

  private:
    const MapSpace &space_;
    std::int64_t next_ = 0;
};

/** Random warmup, then greedy neighborhood refinement with random
 *  restarts on stall. */
class HybridSearch : public SearchStrategy
{
  public:
    /**
     * @param warmup random candidates drawn before refinement starts
     *        (also the restart batch size when refinement stalls).
     */
    HybridSearch(const MapSpace &space, std::uint64_t seed,
                 std::int64_t warmup);

    const char *name() const override { return "hybrid"; }
    std::vector<SearchCandidate> propose(int max_count) override;
    void observe(const std::vector<SearchCandidate> &batch,
                 const std::vector<double> &objectives) override;
    /** Seeded points are proposed ahead of the random warmup; an
     *  improving one becomes the first refinement incumbent. */
    void warmStart(const std::vector<MapSpace::Point> &points) override;

  private:
    std::vector<SearchCandidate> proposeRandom(int count);

    const MapSpace &space_;
    std::uint64_t seed_;
    std::int64_t warmup_;          ///< random window size (warmup/restart)
    std::int64_t random_left_ = 0; ///< random proposals left in window
    std::int64_t next_ = 0;        ///< next proposal index
    std::int64_t next_seed_ = 0;   ///< next random sample offset
    /**
     * Refinement-round state. A round fixes the incumbent's full
     * neighborhood up front and streams it out across propose() calls
     * (`pending_` not yet proposed, `outstanding_` proposed but not
     * yet observed); the improve-or-restart decision falls only at the
     * round boundary. This keeps the proposal sequence — and hence the
     * search result — independent of the driver's batch size.
     */
    std::vector<MapSpace::Point> pending_;
    std::int64_t outstanding_ = 0;
    bool round_improved_ = false;
    bool refining_ = false;        ///< last batch was a neighborhood
    std::optional<MapSpace::Point> incumbent_;
    double incumbent_obj_ = 0.0;
    /** Warm-start points not yet proposed (served before warmup). */
    std::vector<MapSpace::Point> warm_pending_;
};

/**
 * Shared machinery for strategies that evaluate fixed-size rounds of
 * `MapSpace::Point`s in lockstep (annealing rounds, genetic
 * generations). A round's points are fixed up front by `buildRound`
 * and streamed out across `propose` calls; `roundComplete` fires once
 * every point of the round has been observed, so all state updates
 * fall at round boundaries and the proposal sequence — hence the
 * search result — is independent of the driver's batch size. On a
 * mapspace whose tiling axes exceed the materialization limits
 * (`!MapSpace::pointEncodable()`), the strategy degenerates to seeded
 * random sampling, mirroring `HybridSearch`.
 */
class RoundStrategy : public SearchStrategy
{
  public:
    RoundStrategy(const MapSpace &space, std::uint64_t seed);

    std::vector<SearchCandidate> propose(int max_count) override;
    void observe(const std::vector<SearchCandidate> &batch,
                 const std::vector<double> &objectives) override;

  protected:
    /** Fill @p out with the next round's points (must not be empty). */
    virtual void buildRound(std::vector<MapSpace::Point> &out) = 0;
    /** One objective per round point, +infinity for invalid ones. */
    virtual void roundComplete(const std::vector<MapSpace::Point> &points,
                               const std::vector<double> &objectives) = 0;

    /** Draw the next seeded random point (the historical seed + index
     *  derivation shared with `RandomSearch`). */
    MapSpace::Point nextSamplePoint();

    const MapSpace &space_;
    std::uint64_t seed_;
    bool degenerate_ = false;  ///< tiling axes not materialized

  private:
    std::vector<MapSpace::Point> round_points_;
    std::size_t round_proposed_ = 0;
    std::vector<double> round_objectives_;
    std::size_t round_observed_ = 0;
    std::int64_t next_ = 0;       ///< next proposal index
    std::int64_t next_seed_ = 0;  ///< next random sample offset
};

/**
 * Simulated annealing over `MapSpace::Point` coordinates:
 * `AnnealingOptions::chains` independent Metropolis chains advance in
 * lockstep, one uniformly drawn neighbor move per chain per round,
 * under a shared geometric temperature schedule on the
 * relative-worsening scale (see `AnnealingOptions`). An improving
 * move is always accepted; a worsening one with probability
 * `exp(-relative_worsening / temperature)`, so early rounds explore
 * across objective barriers and late rounds converge like greedy
 * refinement. Deterministic per (seed, options, budget) and — like
 * every strategy — bit-identical at any thread count and driver batch
 * size.
 */
class AnnealingSearch : public RoundStrategy
{
  public:
    /**
     * @param budget the driver's sample budget; derives the cooling
     *        factor when `options.cooling == 0`.
     */
    AnnealingSearch(const MapSpace &space, std::uint64_t seed,
                    std::int64_t budget, AnnealingOptions options = {});

    const char *name() const override { return "annealing"; }
    /** Seeded points become the initial chain states (first
     *  `chains` points; the rest of the chains start from seeded
     *  random samples). */
    void warmStart(const std::vector<MapSpace::Point> &points) override;

  protected:
    void buildRound(std::vector<MapSpace::Point> &out) override;
    void roundComplete(const std::vector<MapSpace::Point> &points,
                       const std::vector<double> &objectives) override;

  private:
    /** One Metropolis chain: its incumbent point and a private RNG
     *  for move selection and acceptance draws. */
    struct Chain
    {
        MapSpace::Point point;
        double objective = 0.0;
        std::mt19937_64 rng;
    };

    AnnealingOptions options_;
    double temperature_;
    double cooling_;
    std::vector<Chain> chains_;
    std::vector<MapSpace::Point> warm_points_;
    bool initialized_ = false;  ///< round 0 (chain seeding) observed
};

/**
 * Genetic search over `MapSpace::Point` coordinates: a population
 * evolved by (objective, age)-ranked tournament selection, axis-wise
 * `MapSpace::crossover`, and neighbor-move mutation. Every offspring
 * is a valid in-space point by construction — crossover recombines
 * per-axis coordinates of the constraint-pruned space and
 * `MapSpace::reconcile` repairs cross-axis consistency, so no
 * candidate is ever generated and then rejected. Elites carry across
 * generations without re-evaluation, so the whole budget is spent on
 * new candidates. Deterministic per (seed, options) and bit-identical
 * at any thread count and driver batch size.
 */
class GeneticSearch : public RoundStrategy
{
  public:
    GeneticSearch(const MapSpace &space, std::uint64_t seed,
                  GeneticOptions options = {});

    const char *name() const override { return "genetic"; }
    /** Seeded points join generation 0 (first `population` points;
     *  seeded random samples fill the remainder). */
    void warmStart(const std::vector<MapSpace::Point> &points) override;

  protected:
    void buildRound(std::vector<MapSpace::Point> &out) override;
    void roundComplete(const std::vector<MapSpace::Point> &points,
                       const std::vector<double> &objectives) override;

  private:
    /** One evaluated population member; `birth` (the member's creation
     *  rank) breaks objective ties deterministically, older first. */
    struct Member
    {
        MapSpace::Point point;
        double objective;
        std::int64_t birth;
    };

    /** Indices of @p members ranked best-first by (objective, birth). */
    static std::vector<std::size_t>
    ranked(const std::vector<Member> &members);
    /** Tournament-select one member index (best of `tournament`
     *  uniform draws). */
    std::size_t selectParent();

    GeneticOptions options_;
    std::mt19937_64 rng_;
    std::vector<Member> parents_;   ///< last completed generation
    std::vector<Member> carried_;   ///< elites carried into this round
    std::vector<std::int64_t> round_births_;
    std::vector<MapSpace::Point> warm_points_;
    std::int64_t next_birth_ = 0;
};

/**
 * Coarse-then-refine search for spaces whose fine axes (loop orders,
 * spatial picks) drown the budget: phase one sweeps the coarse
 * quotient — tiling shapes crossed with keep-mask combinations, each
 * represented by one canonical-order mapping from
 * `MapSpace::coarsePoints` — and phase two spends the remaining budget
 * on greedy neighborhood descent from the best
 * `HierarchicalOptions::refine_width` coarse cells, sharpening their
 * loop orders, spatial picks, and tilings concurrently. A stalled
 * incumbent (no improving neighbor in a full round) is retired; when
 * every incumbent has stalled the remaining budget falls back to
 * seeded random sampling. All decisions fall at round boundaries, so
 * results are bit-identical across thread counts and driver batch
 * sizes, like every other strategy.
 */
class HierarchicalSearch : public RoundStrategy
{
  public:
    /**
     * @param budget the driver's sample budget; sizes the coarse
     *        phase when `options.coarse_budget == 0`.
     */
    HierarchicalSearch(const MapSpace &space, std::uint64_t seed,
                       std::int64_t budget,
                       HierarchicalOptions options = {});

    const char *name() const override { return "hierarchical"; }
    /** Seeded points are scored ahead of the coarse sweep and compete
     *  for the refinement slots like any coarse cell. */
    void warmStart(const std::vector<MapSpace::Point> &points) override;

  protected:
    void buildRound(std::vector<MapSpace::Point> &out) override;
    void roundComplete(const std::vector<MapSpace::Point> &points,
                       const std::vector<double> &objectives) override;

  private:
    /** A scored coarse cell / refinement incumbent. */
    struct Scored
    {
        MapSpace::Point point;
        double objective = 0.0;
        std::int64_t order = 0;  ///< scoring rank (deterministic ties)
    };

    HierarchicalOptions options_;
    /** Coarse representatives not yet proposed (warm starts first). */
    std::vector<MapSpace::Point> coarse_pending_;
    std::size_t coarse_next_ = 0;
    /** Everything scored during the coarse phase. */
    std::vector<Scored> coarse_scored_;
    bool coarse_done_ = false;
    /** Active refinement incumbents (at most `refine_width`). */
    std::vector<Scored> incumbents_;
    /** Per-incumbent [begin, end) slices of the current refinement
     *  round's point list. */
    std::vector<std::pair<std::size_t, std::size_t>> refine_slices_;
    std::int64_t next_order_ = 0;
};

/**
 * Build the strategy for @p kind. `Auto` resolves to exhaustive when
 * `space.size().enumerable` fits within @p budget, else random.
 * @p budget also sizes `HybridSearch`'s default warmup window and
 * `AnnealingSearch`'s default cooling schedule (via @p tuning).
 */
std::unique_ptr<SearchStrategy>
makeSearchStrategy(SearchStrategyKind kind, const MapSpace &space,
                   std::uint64_t seed, std::int64_t budget,
                   const SearchTuning &tuning = {});

} // namespace sparseloop

#endif // SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH
