/**
 * @file
 * Pluggable search strategies over the mapspace IR.
 *
 * A strategy is a candidate generator: the driver (`Mapper` /
 * `ParallelMapper`) repeatedly asks it to `propose` a batch of
 * candidates, evaluates the batch through `BatchEvaluator` (so
 * deduplication, dense-prefix grouping, and the worker pool apply
 * during search), feeds the objectives back via `observe`, and keeps
 * the (objective, index)-lexicographic best. Splitting generation from
 * evaluation is what makes the strategies interchangeable and the
 * parallelism strategy-agnostic: every strategy is deterministic given
 * its feedback, and the feedback is bit-identical at any thread count.
 *
 * Shipped strategies:
 *  - `RandomSearch` — seeded sampling via the IR; bit-identical to the
 *    pre-IR mapper on unconstrained spaces (same seed -> candidate
 *    derivation), rejection-free under constraints.
 *  - `ExhaustiveSearch` — walks `MapSpace::mappingAt`; auto-selected
 *    by the driver when the pruned space fits the sample budget, which
 *    upgrades the search from sampled to provably optimal.
 *  - `HybridSearch` — random warmup, then greedy hill-climbing over
 *    `MapSpace::neighbors` with random restarts when a local optimum
 *    stalls.
 */

#ifndef SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH
#define SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH

#include <memory>

#include "mapper/mapspace.hh"

namespace sparseloop {

/** Which search strategy a `Mapper` runs. */
enum class SearchStrategyKind
{
    /** Exhaustive when the pruned space fits the sample budget
     *  (exactness for free), random otherwise. */
    Auto,
    Random,
    Exhaustive,
    Hybrid,
};

/** One proposed candidate: a mapping plus its global proposal index
 *  (the deterministic tie-break for equal objectives). */
struct SearchCandidate
{
    std::int64_t index = 0;
    Mapping mapping;
};

/**
 * Candidate-generation interface. Not thread-safe: one driver owns and
 * drives a strategy sequentially; parallelism lives in the batched
 * evaluation of whatever the strategy proposes.
 */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    virtual const char *name() const = 0;

    /**
     * Propose up to @p max_count candidates. Indices are unique and
     * strictly increasing across the whole search. An empty batch
     * means the strategy is exhausted and the search stops early.
     */
    virtual std::vector<SearchCandidate> propose(int max_count) = 0;

    /**
     * Feedback for the batch returned by the previous `propose` call:
     * `objectives[i]` is the objective value of `batch[i]` (+infinity
     * for invalid candidates; lower is better).
     */
    virtual void observe(const std::vector<SearchCandidate> &batch,
                         const std::vector<double> &objectives);
};

/** Seeded random sampling through the IR (never exhausts). */
class RandomSearch : public SearchStrategy
{
  public:
    RandomSearch(const MapSpace &space, std::uint64_t seed);

    const char *name() const override { return "random"; }
    std::vector<SearchCandidate> propose(int max_count) override;

  private:
    const MapSpace &space_;
    std::uint64_t seed_;
    std::int64_t next_ = 0;
};

/** Duplicate-free walk of an enumerable space. */
class ExhaustiveSearch : public SearchStrategy
{
  public:
    explicit ExhaustiveSearch(const MapSpace &space);

    const char *name() const override { return "exhaustive"; }
    std::vector<SearchCandidate> propose(int max_count) override;

  private:
    const MapSpace &space_;
    std::int64_t next_ = 0;
};

/** Random warmup, then greedy neighborhood refinement with random
 *  restarts on stall. */
class HybridSearch : public SearchStrategy
{
  public:
    /**
     * @param warmup random candidates drawn before refinement starts
     *        (also the restart batch size when refinement stalls).
     */
    HybridSearch(const MapSpace &space, std::uint64_t seed,
                 std::int64_t warmup);

    const char *name() const override { return "hybrid"; }
    std::vector<SearchCandidate> propose(int max_count) override;
    void observe(const std::vector<SearchCandidate> &batch,
                 const std::vector<double> &objectives) override;

  private:
    std::vector<SearchCandidate> proposeRandom(int count);

    const MapSpace &space_;
    std::uint64_t seed_;
    std::int64_t warmup_;          ///< random window size (warmup/restart)
    std::int64_t random_left_ = 0; ///< random proposals left in window
    std::int64_t next_ = 0;        ///< next proposal index
    std::int64_t next_seed_ = 0;   ///< next random sample offset
    /**
     * Refinement-round state. A round fixes the incumbent's full
     * neighborhood up front and streams it out across propose() calls
     * (`pending_` not yet proposed, `outstanding_` proposed but not
     * yet observed); the improve-or-restart decision falls only at the
     * round boundary. This keeps the proposal sequence — and hence the
     * search result — independent of the driver's batch size.
     */
    std::vector<MapSpace::Point> pending_;
    std::int64_t outstanding_ = 0;
    bool round_improved_ = false;
    bool refining_ = false;        ///< last batch was a neighborhood
    std::optional<MapSpace::Point> incumbent_;
    double incumbent_obj_ = 0.0;
};

/**
 * Build the strategy for @p kind. `Auto` resolves to exhaustive when
 * `space.size().enumerable` fits within @p budget, else random.
 */
std::unique_ptr<SearchStrategy>
makeSearchStrategy(SearchStrategyKind kind, const MapSpace &space,
                   std::uint64_t seed, std::int64_t budget,
                   std::int64_t hybrid_warmup);

} // namespace sparseloop

#endif // SPARSELOOP_MAPPER_SEARCH_STRATEGY_HH
