/**
 * @file
 * Mapspace IR implementation: constraint pruning, axis
 * materialization, exact size accounting, and the three access
 * patterns (seeded sampling, indexed enumeration, coordinate
 * neighborhoods).
 */

#include "mapper/mapspace.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

namespace {

/** Largest tiled-dimension set whose canonical orders are
 *  materialized; beyond it the level falls back to raw factorial
 *  enumeration (such spaces exceed the enumerable limit anyway). */
constexpr int kMaxCanonicalDims = 8;

int
countBits(std::uint64_t mask)
{
    int n = 0;
    for (; mask != 0; mask &= mask - 1) {
        ++n;
    }
    return n;
}

/** First duplicate value in a list, or -1 when all unique. */
int
firstDuplicate(const std::vector<int> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        for (std::size_t j = i + 1; j < values.size(); ++j) {
            if (values[i] == values[j]) {
                return values[i];
            }
        }
    }
    return -1;
}

void
validateIndexList(const std::vector<int> &values, int limit, int level,
                  const char *axis, const char *what)
{
    for (int v : values) {
        if (v < 0 || v >= limit) {
            SL_FATAL("level ", level, " constraint: ", axis,
                     " references ", what, " ", v,
                     " but valid indices are [0, ", limit, ")");
        }
    }
    int dup = firstDuplicate(values);
    if (dup >= 0) {
        SL_FATAL("level ", level, " constraint: ", axis, " lists ",
                 what, " ", dup, " more than once");
    }
}

/** Enumerate per-level factor vectors recursively over allowed
 *  levels (ascending), one divisor of the residual per level. */
void
enumerateSplits(const std::vector<int> &allowed, std::size_t pos,
                std::int64_t remaining, int level_count,
                std::vector<std::int64_t> &current,
                std::vector<std::vector<std::int64_t>> &out)
{
    if (pos == allowed.size()) {
        if (remaining == 1) {
            out.push_back(current);
        }
        return;
    }
    if (pos + 1 == allowed.size()) {
        // Last allowed level takes the whole residual.
        current[static_cast<std::size_t>(allowed[pos])] = remaining;
        out.push_back(current);
        current[static_cast<std::size_t>(allowed[pos])] = 1;
        return;
    }
    (void)level_count;
    for (std::int64_t f : math::divisors(remaining)) {
        current[static_cast<std::size_t>(allowed[pos])] = f;
        enumerateSplits(allowed, pos + 1, remaining / f, level_count,
                       current, out);
    }
    current[static_cast<std::size_t>(allowed[pos])] = 1;
}

} // namespace

void
validateConstraints(const Workload &workload, const Architecture &arch,
                    const MapspaceConstraints &constraints)
{
    if (constraints.levels.empty()) {
        return;
    }
    if (static_cast<int>(constraints.levels.size()) !=
        arch.levelCount()) {
        SL_FATAL("constraint count ", constraints.levels.size(),
                 " must match the level count ", arch.levelCount());
    }
    const int D = workload.dimCount();
    const int T = workload.tensorCount();
    for (std::size_t l = 0; l < constraints.levels.size(); ++l) {
        const LevelConstraint &con = constraints.levels[l];
        const int level = static_cast<int>(l);
        validateIndexList(con.loop_order, D, level, "loop_order",
                          "dimension");
        validateIndexList(con.spatial_dims, D, level, "spatial_dims",
                          "dimension");
        validateIndexList(con.keep, T, level, "keep", "tensor");
    }
}

MapSpace::MapSpace(const Workload &workload, const Architecture &arch,
                   MapspaceConstraints constraints,
                   MapSpaceOptions options)
    : workload_(workload), arch_(arch),
      constraints_(std::move(constraints)), options_(options)
{
    validateConstraints(workload_, arch_, constraints_);
    const int S = arch_.levelCount();
    const int D = workload_.dimCount();
    level_cons_.assign(static_cast<std::size_t>(S), LevelConstraint{});
    if (!constraints_.levels.empty()) {
        level_cons_ = constraints_.levels;
    }

    // Tiling axes: admissible levels and split counts per dimension.
    allowed_.resize(static_cast<std::size_t>(D));
    split_count_.resize(static_cast<std::size_t>(D), 1);
    splits_.resize(static_cast<std::size_t>(D));
    for (int d = 0; d < D; ++d) {
        for (int l = 0; l < S; ++l) {
            if (levelAllowsDim(l, d)) {
                allowed_[static_cast<std::size_t>(d)].push_back(l);
            }
        }
        const std::int64_t bound = workload_.dims()[d].bound;
        const auto &lvls = allowed_[static_cast<std::size_t>(d)];
        if (lvls.empty() && bound > 1) {
            SL_WARN("mapspace is empty: dimension ",
                    workload_.dims()[d].name, " (bound ", bound,
                    ") is excluded from every level's loop_order");
            empty_ = true;
            continue;
        }
        split_count_[static_cast<std::size_t>(d)] =
            math::orderedFactorizationCount(
                bound, static_cast<int>(lvls.size()));
        if (split_count_[static_cast<std::size_t>(d)] <=
            options_.max_splits_per_dim) {
            auto &out = splits_[static_cast<std::size_t>(d)];
            std::vector<std::int64_t> current(
                static_cast<std::size_t>(S), 1);
            if (lvls.empty()) {
                out.push_back(current);  // bound == 1: the empty split
            } else {
                enumerateSplits(lvls, 0, bound, S, current, out);
            }
            std::sort(out.begin(), out.end());
            SL_ASSERT(static_cast<std::int64_t>(out.size()) ==
                          split_count_[static_cast<std::size_t>(d)],
                      "split enumeration disagrees with the count");
        }
    }

    // Keep/bypass axes.
    const int T = workload_.tensorCount();
    keep_choices_.resize(static_cast<std::size_t>(S));
    for (int l = 0; l < S; ++l) {
        auto &choices = keep_choices_[static_cast<std::size_t>(l)];
        const LevelConstraint &con =
            level_cons_[static_cast<std::size_t>(l)];
        if (!con.keep.empty()) {
            std::vector<bool> mask(static_cast<std::size_t>(T), false);
            for (int t : con.keep) {
                mask[static_cast<std::size_t>(t)] = true;
            }
            choices.push_back(std::move(mask));
        } else if (options_.explore_bypass && l > 0 && T <= 16) {
            // All masks; the all-keep mask is canonically the empty
            // vector (matching the sampler and Mapping::signature()).
            choices.emplace_back();
            for (std::uint32_t bits = 0;
                 bits + 1 < (1u << static_cast<unsigned>(T)); ++bits) {
                std::vector<bool> mask(static_cast<std::size_t>(T));
                for (int t = 0; t < T; ++t) {
                    mask[static_cast<std::size_t>(t)] =
                        (bits >> static_cast<unsigned>(t)) & 1u;
                }
                choices.push_back(std::move(mask));
            }
        } else {
            choices.emplace_back();  // keep-all
        }
    }

    // Symmetry classes: dimensions whose tensor-relevance signatures
    // are identical commute as adjacent loops (swapping them changes
    // no footprint, reuse multiplier, or multicast factor), so the
    // symmetry pass enumerates one canonical order per class run.
    dim_class_.assign(static_cast<std::size_t>(D), -1);
    {
        std::vector<std::vector<bool>> signatures;
        for (int d = 0; d < D; ++d) {
            std::vector<bool> sig(static_cast<std::size_t>(T));
            for (int t = 0; t < T; ++t) {
                sig[static_cast<std::size_t>(t)] =
                    workload_.dimRelevant(t, d);
            }
            auto it =
                std::find(signatures.begin(), signatures.end(), sig);
            if (it == signatures.end()) {
                signatures.push_back(sig);
                it = std::prev(signatures.end());
            }
            dim_class_[static_cast<std::size_t>(d)] =
                static_cast<int>(it - signatures.begin());
        }
    }

    // Levels whose keep axis is open. By construction an open level
    // offers every mask, which is what lets the joint keep axis
    // factorize per tensor in the dominance pass.
    for (int l = 0; l < S; ++l) {
        if (keep_choices_[static_cast<std::size_t>(l)].size() > 1) {
            keep_free_levels_.push_back(l);
        }
    }

    // Size accounting: exact (with enumeration prefix sums) when the
    // tiling cross-product is materialized and small enough, estimate
    // otherwise.
    std::int64_t tilings = 1;
    bool tilings_ok = !empty_;
    for (int d = 0; d < D && tilings_ok; ++d) {
        if (splits_[static_cast<std::size_t>(d)].empty()) {
            tilings_ok = false;
            break;
        }
        tilings = math::mulSat(
            tilings, split_count_[static_cast<std::size_t>(d)]);
    }
    tilings_ok = tilings_ok && tilings <= options_.max_tilings;

    if (empty_) {
        size_ = {0.0, true, 0};
        prune_stats_.exact = true;
        return;
    }
    if (tilings_ok) {
        std::vector<std::int64_t> radices(split_count_.begin(),
                                          split_count_.end());
        std::int64_t total = 0;
        bool saturated = false;
        prune_stats_ = {};
        prune_stats_.exact = true;
        tiling_prefix_.reserve(static_cast<std::size_t>(tilings) + 1);
        tiling_prefix_.push_back(0);
        for (std::int64_t t = 0; t < tilings; ++t) {
            auto digits = math::mixedRadixDecode(t, radices);
            std::vector<std::size_t> tiling(digits.begin(),
                                            digits.end());
            auto factors = tilingFactors(tiling);
            for (int l = 0; l < S; ++l) {
                if (!orderConstrained(l)) {
                    ensureCanonical(tiledMask(
                        factors[static_cast<std::size_t>(l)]));
                }
            }
            BlockCounts c = blockCounts(factors);
            bool cap_pruned = options_.prune_capacity_tilings &&
                              capacityPruned(factors);
            prune_stats_.raw_points += c.raw;
            prune_stats_.pruned_symmetry += c.raw - c.symmetry;
            prune_stats_.pruned_dominated_keeps += c.symmetry - c.pruned;
            if (cap_pruned) {
                prune_stats_.pruned_capacity_tilings += c.pruned;
            }
            std::int64_t block = cap_pruned ? 0 : c.block;
            // int64 saturation stops the enumeration prefix sums but
            // not the per-pass accounting, which runs in doubles.
            if (!saturated &&
                total >
                    std::numeric_limits<std::int64_t>::max() - block) {
                saturated = true;
            }
            if (!saturated) {
                total += block;
                tiling_prefix_.push_back(total);
            }
        }
        if (!saturated) {
            size_.points = static_cast<double>(total);
            size_.exact = true;
            size_.enumerable =
                total <= options_.max_enumerable_points ? total : -1;
        }
        if (saturated || size_.enumerable < 0) {
            tiling_prefix_.clear();
        }
        if (!saturated) {
            return;
        }
        // Saturated: fall through to the product-form size estimate,
        // keeping the (still-valid) double-accumulated pass counts.
    }

    // Product-form upper bound: every admissible dimension tiled at
    // every admissible level.
    double points = 1.0;
    for (int d = 0; d < D; ++d) {
        points *= static_cast<double>(
            split_count_[static_cast<std::size_t>(d)]);
    }
    for (int l = 0; l < S; ++l) {
        int dims_here = 0;
        int spatial_here = 0;
        for (int d = 0; d < D; ++d) {
            if (!levelAllowsDim(l, d) ||
                workload_.dims()[d].bound <= 1) {
                continue;
            }
            ++dims_here;
            const LevelConstraint &con =
                level_cons_[static_cast<std::size_t>(l)];
            bool spatial_ok = con.spatial_dims.empty() ||
                std::find(con.spatial_dims.begin(),
                          con.spatial_dims.end(),
                          d) != con.spatial_dims.end();
            if (spatial_ok && arch_.level(l).fanout > 1) {
                ++spatial_here;
            }
        }
        if (!orderConstrained(l)) {
            points *= static_cast<double>(math::factorial(dims_here));
        }
        points *= static_cast<double>(std::max(1, spatial_here));
        points *= static_cast<double>(
            keep_choices_[static_cast<std::size_t>(l)].size());
    }
    size_.points = points;
    size_.exact = false;
    size_.enumerable = -1;
    if (!prune_stats_.exact) {
        // Estimate path: only the raw total is known.
        prune_stats_.raw_points = points;
    }
}

bool
MapSpace::levelAllowsDim(int level, int dim) const
{
    const LevelConstraint &con =
        level_cons_[static_cast<std::size_t>(level)];
    return con.loop_order.empty() ||
        std::find(con.loop_order.begin(), con.loop_order.end(), dim) !=
            con.loop_order.end();
}

bool
MapSpace::orderConstrained(int level) const
{
    return !level_cons_[static_cast<std::size_t>(level)]
                .loop_order.empty();
}

std::vector<int>
MapSpace::spatialCandidates(
    int level, const std::vector<std::int64_t> &factors) const
{
    std::vector<int> candidates;
    if (arch_.level(level).fanout <= 1) {
        return candidates;
    }
    const LevelConstraint &con =
        level_cons_[static_cast<std::size_t>(level)];
    for (int d = 0; d < dimCount(); ++d) {
        std::int64_t f = factors[static_cast<std::size_t>(d)];
        bool allowed = con.spatial_dims.empty() ||
            std::find(con.spatial_dims.begin(), con.spatial_dims.end(),
                      d) != con.spatial_dims.end();
        if (f > 1 && f <= arch_.level(level).fanout && allowed) {
            candidates.push_back(d);
        }
    }
    return candidates;
}

std::vector<std::vector<std::int64_t>>
MapSpace::tilingFactors(const std::vector<std::size_t> &tiling) const
{
    const int S = levelCount();
    const int D = dimCount();
    std::vector<std::vector<std::int64_t>> factors(
        static_cast<std::size_t>(S),
        std::vector<std::int64_t>(static_cast<std::size_t>(D), 1));
    for (int d = 0; d < D; ++d) {
        const auto &split =
            splits_[static_cast<std::size_t>(d)]
                   [tiling[static_cast<std::size_t>(d)]];
        for (int l = 0; l < S; ++l) {
            factors[static_cast<std::size_t>(l)]
                   [static_cast<std::size_t>(d)] =
                split[static_cast<std::size_t>(l)];
        }
    }
    return factors;
}

std::uint64_t
MapSpace::tiledMask(const std::vector<std::int64_t> &level_factors) const
{
    std::uint64_t mask = 0;
    for (int d = 0; d < dimCount(); ++d) {
        if (level_factors[static_cast<std::size_t>(d)] > 1) {
            mask |= std::uint64_t{1} << static_cast<unsigned>(d);
        }
    }
    return mask;
}

bool
MapSpace::canonicalAt(int level, std::uint64_t mask) const
{
    return options_.prune_symmetry && !orderConstrained(level) &&
           countBits(mask) <= kMaxCanonicalDims;
}

void
MapSpace::ensureCanonical(std::uint64_t mask)
{
    if (countBits(mask) > kMaxCanonicalDims ||
        canon_.count(mask) != 0) {
        return;
    }
    std::vector<int> perm;
    for (int d = 0; d < dimCount(); ++d) {
        if ((mask >> static_cast<unsigned>(d)) & 1u) {
            perm.push_back(d);
        }
    }
    // Canonical = every adjacent pair of same-class dimensions is
    // ascending by dimension id. Each equivalence orbit (orders
    // reachable by commuting same-class neighbors) contains exactly
    // one such order, so filtering the full permutation list keeps one
    // traffic-identical representative per orbit. Counting must
    // enumerate, not divide by multinomials: classes need not form
    // contiguous runs in an order, so orbits have varying sizes.
    std::vector<std::vector<int>> orders;
    do {
        bool canonical = true;
        for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
            if (dim_class_[static_cast<std::size_t>(perm[i])] ==
                    dim_class_[static_cast<std::size_t>(perm[i + 1])] &&
                perm[i] > perm[i + 1]) {
                canonical = false;
                break;
            }
        }
        if (canonical) {
            orders.push_back(perm);
        }
    } while (std::next_permutation(perm.begin(), perm.end()));
    canon_.emplace(mask, std::move(orders));
}

const std::vector<std::vector<int>> &
MapSpace::canonicalOrders(std::uint64_t mask) const
{
    auto it = canon_.find(mask);
    SL_ASSERT(it != canon_.end(),
              "canonical orders were not prebuilt for mask ", mask);
    return it->second;
}

std::vector<std::uint64_t>
MapSpace::relevantLevelMasks(
    const std::vector<std::vector<std::int64_t>> &factors) const
{
    const int T = workload_.tensorCount();
    std::vector<std::uint64_t> rel(static_cast<std::size_t>(T), 0);
    for (int l = 0; l < levelCount(); ++l) {
        const auto &lf = factors[static_cast<std::size_t>(l)];
        for (int d = 0; d < dimCount(); ++d) {
            if (lf[static_cast<std::size_t>(d)] <= 1) {
                continue;
            }
            for (int t = 0; t < T; ++t) {
                if (workload_.dimRelevant(t, d)) {
                    rel[static_cast<std::size_t>(t)] |=
                        std::uint64_t{1} << static_cast<unsigned>(l);
                }
            }
        }
    }
    return rel;
}

std::vector<std::uint32_t>
MapSpace::keepCombos(int t, std::uint64_t relevant_mask) const
{
    const int S = levelCount();
    const int F = static_cast<int>(keep_free_levels_.size());
    // Keeps forced regardless of the free bits: the backing store and
    // every fixed level whose single mask keeps the tensor.
    std::uint64_t fixed = 1;
    for (int l = 1; l < S; ++l) {
        const auto &ch = keep_choices_[static_cast<std::size_t>(l)];
        if (ch.size() == 1 &&
            (ch.front().empty() ||
             ch.front()[static_cast<std::size_t>(t)])) {
            fixed |= std::uint64_t{1} << static_cast<unsigned>(l);
        }
    }
    std::vector<std::uint32_t> combos;
    for (std::uint32_t bits = 0;
         bits < (1u << static_cast<unsigned>(F)); ++bits) {
        std::uint64_t col = fixed;
        for (int i = 0; i < F; ++i) {
            if ((bits >> static_cast<unsigned>(i)) & 1u) {
                col |= std::uint64_t{1}
                    << static_cast<unsigned>(
                           keep_free_levels_[static_cast<std::size_t>(
                               i)]);
            }
        }
        // A free keep at level l is dominated when some inner keeping
        // level b exists and no loop at levels [l, b) touches the
        // tensor: the kept tile then provides zero reuse (fills ==
        // reads), so bypassing it saves accesses and capacity on every
        // metric. The innermost keep (no b) is never dominated.
        bool dominated = false;
        if (options_.prune_dominated_keeps) {
            for (int i = 0; i < F && !dominated; ++i) {
                if (!((bits >> static_cast<unsigned>(i)) & 1u)) {
                    continue;
                }
                int l =
                    keep_free_levels_[static_cast<std::size_t>(i)];
                int b = -1;
                for (int lb = l + 1; lb < S; ++lb) {
                    if ((col >> static_cast<unsigned>(lb)) & 1u) {
                        b = lb;
                        break;
                    }
                }
                if (b < 0) {
                    continue;
                }
                std::uint64_t between =
                    (std::uint64_t{1} << static_cast<unsigned>(b)) -
                    (std::uint64_t{1} << static_cast<unsigned>(l));
                dominated = (relevant_mask & between) == 0;
            }
        }
        if (!dominated) {
            combos.push_back(bits);
        }
    }
    return combos;
}

bool
MapSpace::capacityPruned(
    const std::vector<std::vector<std::int64_t>> &factors) const
{
    const int S = levelCount();
    const int D = dimCount();
    const int T = workload_.tensorCount();
    for (int l = 0; l < S; ++l) {
        double cap = arch_.level(l).capacity_words;
        if (std::isinf(cap)) {
            continue;
        }
        std::vector<std::int64_t> tiles(static_cast<std::size_t>(D), 1);
        for (int d = 0; d < D; ++d) {
            for (int l2 = l; l2 < S; ++l2) {
                tiles[static_cast<std::size_t>(d)] *=
                    factors[static_cast<std::size_t>(l2)]
                           [static_cast<std::size_t>(d)];
            }
        }
        // Minimum possible occupancy: only tensors kept under every
        // admissible mask count, at their dense tile footprint (the
        // engine's worst-case words for an unformatted kept tensor).
        double occupancy = 0.0;
        const auto &ch = keep_choices_[static_cast<std::size_t>(l)];
        for (int t = 0; t < T; ++t) {
            bool always_kept = (l == 0) ||
                (ch.size() == 1 &&
                 (ch.front().empty() ||
                  ch.front()[static_cast<std::size_t>(t)]));
            if (!always_kept) {
                continue;
            }
            occupancy += static_cast<double>(
                volume(workload_.tensorTileExtents(t, tiles)));
        }
        if (occupancy > cap) {
            return true;
        }
    }
    return false;
}

MapSpace::BlockCounts
MapSpace::blockCounts(
    const std::vector<std::vector<std::int64_t>> &factors) const
{
    BlockCounts c;
    double ps_raw = 1.0;   // permutation x spatial, before symmetry
    double ps_sym = 1.0;   // permutation x spatial, canonical orders
    double keeps_raw = 1.0;
    std::int64_t block = 1;
    for (int l = 0; l < levelCount(); ++l) {
        const auto &lf = factors[static_cast<std::size_t>(l)];
        std::uint64_t mask = tiledMask(lf);
        std::int64_t raw_perms =
            orderConstrained(l) ? 1 : math::factorial(countBits(mask));
        std::int64_t perms = raw_perms;
        if (canonicalAt(l, mask)) {
            perms = static_cast<std::int64_t>(
                canonicalOrders(mask).size());
        }
        std::int64_t spatial = std::max<std::int64_t>(
            1,
            static_cast<std::int64_t>(
                spatialCandidates(l, lf).size()));
        ps_raw *= static_cast<double>(raw_perms) *
                  static_cast<double>(spatial);
        ps_sym *= static_cast<double>(perms) *
                  static_cast<double>(spatial);
        keeps_raw *= static_cast<double>(
            keep_choices_[static_cast<std::size_t>(l)].size());
        block = math::mulSat(block, perms);
        block = math::mulSat(block, spatial);
    }
    double keeps_pruned = keeps_raw;
    std::int64_t keep_block = 1;
    if (options_.prune_dominated_keeps && !keep_free_levels_.empty()) {
        // The joint keep axis factorizes per tensor: every open level
        // offers all masks, so a joint choice is exactly one
        // free-level keep column per tensor.
        auto rel = relevantLevelMasks(factors);
        keeps_pruned = 1.0;
        for (int t = 0; t < workload_.tensorCount(); ++t) {
            std::int64_t n = static_cast<std::int64_t>(
                keepCombos(t, rel[static_cast<std::size_t>(t)])
                    .size());
            keeps_pruned *= static_cast<double>(n);
            keep_block = math::mulSat(keep_block, n);
        }
    } else {
        for (int l = 0; l < levelCount(); ++l) {
            keep_block = math::mulSat(
                keep_block,
                static_cast<std::int64_t>(
                    keep_choices_[static_cast<std::size_t>(l)]
                        .size()));
        }
    }
    c.raw = ps_raw * keeps_raw;
    c.symmetry = ps_sym * keeps_raw;
    c.pruned = ps_sym * keeps_pruned;
    c.block = math::mulSat(block, keep_block);
    return c;
}

std::int64_t
MapSpace::tilingCount() const
{
    std::int64_t tilings = 1;
    for (std::int64_t c : split_count_) {
        tilings = math::mulSat(tilings, c);
    }
    return tilings;
}

std::vector<MapSpace::Point>
MapSpace::coarsePoints(std::int64_t tiling_index, int max_keeps) const
{
    SL_ASSERT(pointEncodable(),
              "coarsePoints requires materialized tiling axes");
    SL_ASSERT(tiling_index >= 0 && tiling_index < tilingCount(),
              "tiling index ", tiling_index, " out of range");
    SL_ASSERT(max_keeps > 0, "max_keeps must be positive");
    const int S = levelCount();
    std::vector<std::int64_t> radices(split_count_.begin(),
                                      split_count_.end());
    auto digits = math::mixedRadixDecode(tiling_index, radices);
    Point base;
    base.tiling.assign(digits.begin(), digits.end());
    base.order.resize(static_cast<std::size_t>(S));
    base.spatial.assign(static_cast<std::size_t>(S), -1);
    base.keep.assign(static_cast<std::size_t>(S), 0);
    // Reconcile fills the default ascending loop order and the first
    // spatial candidate — the coarse representative of the fine axes.
    base = reconcile(std::move(base));

    std::vector<std::int64_t> kradices(static_cast<std::size_t>(S));
    std::int64_t total = 1;
    for (int l = 0; l < S; ++l) {
        kradices[static_cast<std::size_t>(l)] =
            static_cast<std::int64_t>(
                keep_choices_[static_cast<std::size_t>(l)].size());
        total = math::mulSat(total,
                             kradices[static_cast<std::size_t>(l)]);
    }
    std::int64_t k = std::min<std::int64_t>(max_keeps, total);
    std::int64_t stride = total / k;
    std::vector<Point> out;
    out.reserve(static_cast<std::size_t>(k));
    for (std::int64_t j = 0; j < k; ++j) {
        auto kd = math::mixedRadixDecode(j * stride, kradices);
        Point p = base;
        p.keep.assign(kd.begin(), kd.end());
        out.push_back(std::move(p));
    }
    return out;
}

Mapping
MapSpace::sampleMapping(std::uint64_t seed) const
{
    SL_ASSERT(!empty_, "sampling an empty mapspace");
    std::mt19937_64 rng(seed);
    const int S = levelCount();
    const int D = dimCount();

    // 1. Split each dimension's bound into per-level factors by
    //    repeatedly peeling random divisors from the innermost
    //    admissible level upward; the outermost admissible level takes
    //    the residual. With no constraints every level is admissible
    //    and this consumes the RNG exactly like the pre-IR sampler.
    std::vector<std::vector<std::int64_t>> factors(
        static_cast<std::size_t>(S),
        std::vector<std::int64_t>(static_cast<std::size_t>(D), 1));
    for (int d = 0; d < D; ++d) {
        const auto &lvls = allowed_[static_cast<std::size_t>(d)];
        std::int64_t remaining = workload_.dims()[d].bound;
        if (lvls.empty()) {
            continue;  // bound == 1 (empty spaces are rejected above)
        }
        for (std::size_t i = lvls.size(); i-- > 1 && remaining > 1;) {
            auto divs = math::divisors(remaining);
            std::uniform_int_distribution<std::size_t> pick(
                0, divs.size() - 1);
            std::int64_t f = divs[pick(rng)];
            factors[static_cast<std::size_t>(lvls[i])]
                   [static_cast<std::size_t>(d)] = f;
            remaining /= f;
        }
        factors[static_cast<std::size_t>(lvls.front())]
               [static_cast<std::size_t>(d)] = remaining;
    }

    // 2. Per level: loop order (constrained sequence or a shuffle) and
    //    spatial assignment.
    std::vector<LevelNest> nests(static_cast<std::size_t>(S));
    for (int l = 0; l < S; ++l) {
        const LevelConstraint &con =
            level_cons_[static_cast<std::size_t>(l)];
        const auto &lf = factors[static_cast<std::size_t>(l)];
        std::vector<int> dims;
        for (int d = 0; d < D; ++d) {
            if (lf[static_cast<std::size_t>(d)] > 1) {
                dims.push_back(d);
            }
        }
        if (!con.loop_order.empty()) {
            // Every tiled dimension here is in the constrained order
            // by construction; restrict to, and order by, it.
            std::vector<int> ordered;
            for (int d : con.loop_order) {
                if (lf[static_cast<std::size_t>(d)] > 1) {
                    ordered.push_back(d);
                }
            }
            dims = std::move(ordered);
        } else {
            std::shuffle(dims.begin(), dims.end(), rng);
        }

        // Spatial choice: with fanout > 1, make one allowed tiled
        // dimension spatial when possible (candidate order follows the
        // loop order, as the pre-IR sampler did).
        int spatial_dim = -1;
        if (arch_.level(l).fanout > 1) {
            std::vector<int> candidates;
            for (int d : dims) {
                bool allowed = con.spatial_dims.empty() ||
                    std::find(con.spatial_dims.begin(),
                              con.spatial_dims.end(), d) !=
                        con.spatial_dims.end();
                if (allowed && lf[static_cast<std::size_t>(d)] <=
                        arch_.level(l).fanout) {
                    candidates.push_back(d);
                }
            }
            if (!candidates.empty()) {
                std::uniform_int_distribution<std::size_t> pick(
                    0, candidates.size() - 1);
                spatial_dim = candidates[pick(rng)];
            }
        }
        for (int d : dims) {
            nests[static_cast<std::size_t>(l)].loops.push_back(
                {d, lf[static_cast<std::size_t>(d)],
                 d == spatial_dim});
        }
        // Keep draw: a single choice (constrained mask or closed keep
        // axis) assigns without consuming the RNG, so explore_bypass
        // off reproduces the historical stream exactly.
        const auto &choices = keep_choices_[static_cast<std::size_t>(l)];
        if (choices.size() > 1) {
            std::uniform_int_distribution<std::size_t> pick(
                0, choices.size() - 1);
            nests[static_cast<std::size_t>(l)].keep = choices[pick(rng)];
        } else {
            nests[static_cast<std::size_t>(l)].keep = choices.front();
        }
    }
    return Mapping(std::move(nests));
}

Mapping
MapSpace::mappingAt(std::int64_t index) const
{
    SL_ASSERT(size_.enumerable >= 0, "mapspace is not enumerable");
    SL_ASSERT(index >= 0 && index < size_.enumerable,
              "mapspace index ", index, " out of range");

    // Locate the tiling block, then peel per-level digits.
    auto it = std::upper_bound(tiling_prefix_.begin(),
                               tiling_prefix_.end(), index);
    std::int64_t t =
        static_cast<std::int64_t>(it - tiling_prefix_.begin()) - 1;
    std::int64_t rest = index - tiling_prefix_[static_cast<std::size_t>(t)];

    std::vector<std::int64_t> radices(split_count_.begin(),
                                      split_count_.end());
    auto digits = math::mixedRadixDecode(t, radices);
    std::vector<std::size_t> tiling(digits.begin(), digits.end());
    auto factors = tilingFactors(tiling);

    const int S = levelCount();
    const int T = workload_.tensorCount();
    std::vector<LevelNest> nests(static_cast<std::size_t>(S));
    for (int l = 0; l < S; ++l) {
        const auto &lf = factors[static_cast<std::size_t>(l)];
        std::uint64_t mask = tiledMask(lf);
        std::vector<int> order;
        if (orderConstrained(l)) {
            for (int d :
                 level_cons_[static_cast<std::size_t>(l)].loop_order) {
                if (lf[static_cast<std::size_t>(d)] > 1) {
                    order.push_back(d);
                }
            }
        } else if (canonicalAt(l, mask)) {
            const auto &orders = canonicalOrders(mask);
            std::int64_t n = static_cast<std::int64_t>(orders.size());
            order = orders[static_cast<std::size_t>(rest % n)];
            rest /= n;
        } else {
            std::vector<int> base;
            for (int d = 0; d < dimCount(); ++d) {
                if (lf[static_cast<std::size_t>(d)] > 1) {
                    base.push_back(d);
                }
            }
            std::int64_t perms =
                math::factorial(static_cast<int>(base.size()));
            std::int64_t digit = rest % perms;
            rest /= perms;
            for (int pos : math::nthPermutation(
                     static_cast<int>(base.size()), digit)) {
                order.push_back(base[static_cast<std::size_t>(pos)]);
            }
        }

        auto candidates = spatialCandidates(l, lf);
        int spatial_dim = -1;
        if (!candidates.empty()) {
            std::int64_t n =
                static_cast<std::int64_t>(candidates.size());
            spatial_dim = candidates[static_cast<std::size_t>(rest % n)];
            rest /= n;
        }

        for (int d : order) {
            nests[static_cast<std::size_t>(l)].loops.push_back(
                {d, lf[static_cast<std::size_t>(d)],
                 d == spatial_dim});
        }
    }

    // Keep axis: with the dominance pass on, the joint choice is one
    // per-tensor free-level combination digit each (matching
    // blockCounts); otherwise one raw mask digit per level.
    if (options_.prune_dominated_keeps && !keep_free_levels_.empty()) {
        for (int l = 0; l < S; ++l) {
            const auto &ch = keep_choices_[static_cast<std::size_t>(l)];
            if (ch.size() == 1) {
                nests[static_cast<std::size_t>(l)].keep = ch.front();
            }
        }
        auto rel = relevantLevelMasks(factors);
        const int F = static_cast<int>(keep_free_levels_.size());
        std::vector<std::uint32_t> combo(static_cast<std::size_t>(T),
                                         0);
        for (int tt = 0; tt < T; ++tt) {
            auto combos =
                keepCombos(tt, rel[static_cast<std::size_t>(tt)]);
            std::int64_t n = static_cast<std::int64_t>(combos.size());
            combo[static_cast<std::size_t>(tt)] =
                combos[static_cast<std::size_t>(rest % n)];
            rest /= n;
        }
        for (int i = 0; i < F; ++i) {
            int l = keep_free_levels_[static_cast<std::size_t>(i)];
            std::vector<bool> keep(static_cast<std::size_t>(T));
            bool all = true;
            for (int tt = 0; tt < T; ++tt) {
                bool bit = (combo[static_cast<std::size_t>(tt)] >>
                            static_cast<unsigned>(i)) &
                           1u;
                keep[static_cast<std::size_t>(tt)] = bit;
                all = all && bit;
            }
            // All-true is canonically the empty (keep-all) mask.
            nests[static_cast<std::size_t>(l)].keep =
                all ? std::vector<bool>{} : std::move(keep);
        }
    } else {
        for (int l = 0; l < S; ++l) {
            const auto &keeps =
                keep_choices_[static_cast<std::size_t>(l)];
            std::int64_t kn = static_cast<std::int64_t>(keeps.size());
            nests[static_cast<std::size_t>(l)].keep =
                keeps[static_cast<std::size_t>(rest % kn)];
            rest /= kn;
        }
    }
    SL_ASSERT(rest == 0, "mapspace index decode left a residue");
    return Mapping(std::move(nests));
}

Mapping
MapSpace::materialize(const Point &point) const
{
    auto factors = tilingFactors(point.tiling);
    const int S = levelCount();
    std::vector<LevelNest> nests(static_cast<std::size_t>(S));
    for (int l = 0; l < S; ++l) {
        const auto &lf = factors[static_cast<std::size_t>(l)];
        const auto &order = point.order[static_cast<std::size_t>(l)];
        int spatial_dim = point.spatial[static_cast<std::size_t>(l)];
        for (int d : order) {
            SL_ASSERT(lf[static_cast<std::size_t>(d)] > 1,
                      "point order lists an untiled dimension");
            nests[static_cast<std::size_t>(l)].loops.push_back(
                {d, lf[static_cast<std::size_t>(d)],
                 d == spatial_dim});
        }
        nests[static_cast<std::size_t>(l)].keep =
            keep_choices_[static_cast<std::size_t>(l)]
                         [point.keep[static_cast<std::size_t>(l)]];
    }
    return Mapping(std::move(nests));
}

std::optional<MapSpace::Point>
MapSpace::encode(const Mapping &mapping) const
{
    const int S = levelCount();
    const int D = dimCount();
    if (mapping.levelCount() != S) {
        return std::nullopt;
    }
    Point point;
    point.tiling.resize(static_cast<std::size_t>(D));
    point.order.resize(static_cast<std::size_t>(S));
    point.spatial.assign(static_cast<std::size_t>(S), -1);
    point.keep.resize(static_cast<std::size_t>(S));

    std::vector<std::vector<std::int64_t>> factors(
        static_cast<std::size_t>(S),
        std::vector<std::int64_t>(static_cast<std::size_t>(D), 1));
    for (int l = 0; l < S; ++l) {
        const LevelNest &nest = mapping.level(l);
        for (const Loop &loop : nest.loops) {
            if (loop.dim < 0 || loop.dim >= D ||
                factors[static_cast<std::size_t>(l)]
                       [static_cast<std::size_t>(loop.dim)] != 1) {
                return std::nullopt;  // unknown or repeated dimension
            }
            factors[static_cast<std::size_t>(l)]
                   [static_cast<std::size_t>(loop.dim)] = loop.bound;
            if (loop.bound > 1) {
                point.order[static_cast<std::size_t>(l)].push_back(
                    loop.dim);
            }
            if (loop.spatial) {
                if (point.spatial[static_cast<std::size_t>(l)] != -1) {
                    return std::nullopt;  // two spatial loops
                }
                point.spatial[static_cast<std::size_t>(l)] = loop.dim;
            }
        }
        const auto &keeps = keep_choices_[static_cast<std::size_t>(l)];
        auto kit = std::find(keeps.begin(), keeps.end(), nest.keep);
        if (kit == keeps.end()) {
            return std::nullopt;
        }
        point.keep[static_cast<std::size_t>(l)] =
            static_cast<std::size_t>(kit - keeps.begin());
    }
    for (int d = 0; d < D; ++d) {
        const auto &dim_splits = splits_[static_cast<std::size_t>(d)];
        if (dim_splits.empty()) {
            return std::nullopt;  // tiling axis not materialized
        }
        std::vector<std::int64_t> split(static_cast<std::size_t>(S));
        for (int l = 0; l < S; ++l) {
            split[static_cast<std::size_t>(l)] =
                factors[static_cast<std::size_t>(l)]
                       [static_cast<std::size_t>(d)];
        }
        auto sit = std::lower_bound(dim_splits.begin(),
                                    dim_splits.end(), split);
        if (sit == dim_splits.end() || *sit != split) {
            return std::nullopt;  // outside the pruned tiling axis
        }
        point.tiling[static_cast<std::size_t>(d)] =
            static_cast<std::size_t>(sit - dim_splits.begin());
    }
    if (!satisfies(materialize(point))) {
        return std::nullopt;
    }
    return point;
}

MapSpace::Point
MapSpace::reconcile(Point point) const
{
    const int S = levelCount();
    auto nf = tilingFactors(point.tiling);
    for (int l = 0; l < S; ++l) {
        const auto &lf = nf[static_cast<std::size_t>(l)];
        std::vector<int> order;
        if (orderConstrained(l)) {
            for (int d : level_cons_[static_cast<std::size_t>(l)]
                             .loop_order) {
                if (lf[static_cast<std::size_t>(d)] > 1) {
                    order.push_back(d);
                }
            }
        } else {
            for (int d : point.order[static_cast<std::size_t>(l)]) {
                if (lf[static_cast<std::size_t>(d)] > 1) {
                    order.push_back(d);
                }
            }
            for (int d = 0; d < dimCount(); ++d) {
                if (lf[static_cast<std::size_t>(d)] > 1 &&
                    std::find(order.begin(), order.end(), d) ==
                        order.end()) {
                    order.push_back(d);
                }
            }
        }
        point.order[static_cast<std::size_t>(l)] = std::move(order);
        auto candidates = spatialCandidates(l, lf);
        int &spatial = point.spatial[static_cast<std::size_t>(l)];
        if (std::find(candidates.begin(), candidates.end(), spatial) ==
            candidates.end()) {
            spatial = candidates.empty() ? -1 : candidates.front();
        }
    }
    return point;
}

MapSpace::Point
MapSpace::samplePoint(std::uint64_t seed) const
{
    SL_ASSERT(pointEncodable(),
              "samplePoint requires every tiling axis materialized");
    auto point = encode(sampleMapping(seed));
    SL_ASSERT(point.has_value(),
              "a sampled mapping failed to encode into its own space");
    return *std::move(point);
}

MapSpace::Point
MapSpace::crossover(const Point &a, const Point &b,
                    std::mt19937_64 &rng) const
{
    std::uniform_int_distribution<int> coin(0, 1);
    Point child = a;
    for (std::size_t d = 0; d < child.tiling.size(); ++d) {
        if (coin(rng)) {
            child.tiling[d] = b.tiling[d];
        }
    }
    for (std::size_t l = 0; l < child.order.size(); ++l) {
        if (coin(rng)) {
            child.order[l] = b.order[l];
        }
        if (coin(rng)) {
            child.spatial[l] = b.spatial[l];
        }
        if (coin(rng)) {
            child.keep[l] = b.keep[l];
        }
    }
    return reconcile(std::move(child));
}

std::optional<MapSpace::Point>
MapSpace::randomNeighbor(const Point &point, std::mt19937_64 &rng) const
{
    std::vector<Point> moves = neighbors(point);
    if (moves.empty()) {
        return std::nullopt;
    }
    std::uniform_int_distribution<std::size_t> pick(0, moves.size() - 1);
    return std::move(moves[pick(rng)]);
}

std::vector<MapSpace::Point>
MapSpace::neighbors(const Point &point) const
{
    std::vector<Point> out;
    const int S = levelCount();
    auto factors = tilingFactors(point.tiling);

    // Tiling moves: adjacent split per dimension.
    for (int d = 0; d < dimCount(); ++d) {
        std::size_t idx = point.tiling[static_cast<std::size_t>(d)];
        for (int delta : {-1, 1}) {
            std::int64_t next = static_cast<std::int64_t>(idx) + delta;
            if (next < 0 || next >= splitCount(d)) {
                continue;
            }
            Point p = point;
            p.tiling[static_cast<std::size_t>(d)] =
                static_cast<std::size_t>(next);
            out.push_back(reconcile(std::move(p)));
        }
    }

    // Permutation moves: adjacent transpositions at unconstrained
    // levels.
    for (int l = 0; l < S; ++l) {
        if (orderConstrained(l)) {
            continue;
        }
        const auto &order = point.order[static_cast<std::size_t>(l)];
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            Point p = point;
            std::swap(p.order[static_cast<std::size_t>(l)][i],
                      p.order[static_cast<std::size_t>(l)][i + 1]);
            out.push_back(std::move(p));
        }
    }

    // Spatial moves: every alternative candidate.
    for (int l = 0; l < S; ++l) {
        auto candidates =
            spatialCandidates(l, factors[static_cast<std::size_t>(l)]);
        for (int d : candidates) {
            if (d == point.spatial[static_cast<std::size_t>(l)]) {
                continue;
            }
            Point p = point;
            p.spatial[static_cast<std::size_t>(l)] = d;
            out.push_back(std::move(p));
        }
    }

    // Keep moves: every alternative mask.
    for (int l = 0; l < S; ++l) {
        const auto &keeps = keep_choices_[static_cast<std::size_t>(l)];
        for (std::size_t k = 0; k < keeps.size(); ++k) {
            if (k == point.keep[static_cast<std::size_t>(l)]) {
                continue;
            }
            Point p = point;
            p.keep[static_cast<std::size_t>(l)] = k;
            out.push_back(std::move(p));
        }
    }
    return out;
}

bool
MapSpace::pointEncodable() const
{
    for (const auto &dim_splits : splits_) {
        if (dim_splits.empty()) {
            return false;
        }
    }
    return !empty_;
}

bool
MapSpace::satisfies(const Mapping &mapping) const
{
    if (mapping.levelCount() != levelCount()) {
        return false;
    }
    for (int l = 0; l < levelCount(); ++l) {
        const LevelConstraint &con =
            level_cons_[static_cast<std::size_t>(l)];
        const LevelNest &nest = mapping.level(l);
        if (!con.loop_order.empty()) {
            // Loops must visit a subsequence of the constrained order.
            std::size_t pos = 0;
            for (const Loop &loop : nest.loops) {
                while (pos < con.loop_order.size() &&
                       con.loop_order[pos] != loop.dim) {
                    ++pos;
                }
                if (pos == con.loop_order.size()) {
                    return false;
                }
                ++pos;
            }
        }
        if (!con.spatial_dims.empty()) {
            for (const Loop &loop : nest.loops) {
                if (loop.spatial &&
                    std::find(con.spatial_dims.begin(),
                              con.spatial_dims.end(), loop.dim) ==
                        con.spatial_dims.end()) {
                    return false;
                }
            }
        }
        if (!con.keep.empty()) {
            std::vector<bool> expected(
                static_cast<std::size_t>(workload_.tensorCount()),
                false);
            for (int t : con.keep) {
                expected[static_cast<std::size_t>(t)] = true;
            }
            if (nest.keep != expected) {
                return false;
            }
        }
    }
    return true;
}

} // namespace sparseloop
