/**
 * @file
 * Search-strategy implementations over the mapspace IR.
 */

#include "mapper/search_strategy.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace sparseloop {

void
SearchStrategy::observe(const std::vector<SearchCandidate> &batch,
                        const std::vector<double> &objectives)
{
    (void)batch;
    (void)objectives;
}

// ---------------------------------------------------------------------------
// RandomSearch
// ---------------------------------------------------------------------------

RandomSearch::RandomSearch(const MapSpace &space, std::uint64_t seed)
    : space_(space), seed_(seed)
{
}

std::vector<SearchCandidate>
RandomSearch::propose(int max_count)
{
    std::vector<SearchCandidate> batch;
    batch.reserve(static_cast<std::size_t>(std::max(0, max_count)));
    for (int i = 0; i < max_count; ++i) {
        std::int64_t index = next_++;
        // seed + index is the historical per-candidate derivation; a
        // given index yields the same candidate at any batch size.
        batch.push_back(
            {index,
             space_.sampleMapping(
                 seed_ + static_cast<std::uint64_t>(index))});
    }
    return batch;
}

// ---------------------------------------------------------------------------
// ExhaustiveSearch
// ---------------------------------------------------------------------------

ExhaustiveSearch::ExhaustiveSearch(const MapSpace &space)
    : space_(space)
{
    SL_ASSERT(space_.size().enumerable >= 0,
              "exhaustive search requires an enumerable mapspace");
}

std::vector<SearchCandidate>
ExhaustiveSearch::propose(int max_count)
{
    std::vector<SearchCandidate> batch;
    const std::int64_t total = space_.size().enumerable;
    while (max_count-- > 0 && next_ < total) {
        batch.push_back({next_, space_.mappingAt(next_)});
        ++next_;
    }
    return batch;
}

// ---------------------------------------------------------------------------
// HybridSearch
// ---------------------------------------------------------------------------

HybridSearch::HybridSearch(const MapSpace &space, std::uint64_t seed,
                           std::int64_t warmup)
    : space_(space), seed_(seed),
      warmup_(std::max<std::int64_t>(1, warmup)),
      random_left_(warmup_),
      incumbent_obj_(std::numeric_limits<double>::infinity())
{
}

std::vector<SearchCandidate>
HybridSearch::proposeRandom(int count)
{
    std::vector<SearchCandidate> batch;
    batch.reserve(static_cast<std::size_t>(std::max(0, count)));
    for (int i = 0; i < count; ++i) {
        batch.push_back(
            {next_++,
             space_.sampleMapping(
                 seed_ + static_cast<std::uint64_t>(next_seed_++))});
    }
    refining_ = false;
    return batch;
}

std::vector<SearchCandidate>
HybridSearch::propose(int max_count)
{
    if (max_count <= 0) {
        return {};
    }
    // Warmup/restart: pure random while the exploration allowance
    // lasts. With no refinable incumbent after a window (all
    // candidates invalid or un-encodable), grant another one.
    if (pending_.empty() && outstanding_ == 0) {
        if (random_left_ == 0 && !incumbent_) {
            random_left_ = warmup_;
        }
        if (random_left_ > 0) {
            std::int64_t want =
                std::min<std::int64_t>(max_count, random_left_);
            auto batch = proposeRandom(static_cast<int>(want));
            random_left_ -= static_cast<std::int64_t>(batch.size());
            return batch;
        }
        // Start a refinement round: fix the incumbent's full
        // neighborhood now and stream it out; the improve-or-restart
        // decision falls at the round boundary (in observe), so the
        // proposal sequence is independent of the driver's batch size.
        pending_ = space_.neighbors(*incumbent_);
        round_improved_ = false;
        if (pending_.empty()) {
            // Isolated point: only random exploration is left.
            random_left_ = warmup_;
            return propose(max_count);
        }
    }
    std::vector<SearchCandidate> batch;
    std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(max_count), pending_.size());
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back({next_++, space_.materialize(pending_[i])});
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    outstanding_ += static_cast<std::int64_t>(take);
    refining_ = true;
    return batch;
}

void
HybridSearch::observe(const std::vector<SearchCandidate> &batch,
                      const std::vector<double> &objectives)
{
    SL_ASSERT(batch.size() == objectives.size(),
              "objective feedback size mismatch");
    bool improved = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (objectives[i] < incumbent_obj_) {
            auto point = space_.encode(batch[i].mapping);
            if (point) {
                incumbent_ = std::move(point);
                incumbent_obj_ = objectives[i];
                improved = true;
            }
        }
    }
    if (!refining_) {
        return;
    }
    outstanding_ -= static_cast<std::int64_t>(batch.size());
    round_improved_ = round_improved_ || improved;
    if (outstanding_ == 0 && pending_.empty()) {
        // Round boundary: a fruitless full neighborhood means a local
        // optimum — grant another random-exploration window (the
        // incumbent survives, so any later improvement refines again).
        if (!round_improved_) {
            random_left_ = warmup_;
        }
        refining_ = false;
    }
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<SearchStrategy>
makeSearchStrategy(SearchStrategyKind kind, const MapSpace &space,
                   std::uint64_t seed, std::int64_t budget,
                   std::int64_t hybrid_warmup)
{
    if (kind == SearchStrategyKind::Auto) {
        const std::int64_t enumerable = space.size().enumerable;
        kind = (enumerable >= 0 && enumerable <= budget)
            ? SearchStrategyKind::Exhaustive
            : SearchStrategyKind::Random;
    }
    switch (kind) {
      case SearchStrategyKind::Random:
        return std::make_unique<RandomSearch>(space, seed);
      case SearchStrategyKind::Exhaustive:
        if (space.size().enumerable < 0) {
            SL_FATAL("exhaustive search requested but the mapspace is ",
                     "not enumerable (~", space.size().points,
                     " points exceed the materialization limits); ",
                     "use Random/Hybrid or raise MapSpaceOptions");
        }
        return std::make_unique<ExhaustiveSearch>(space);
      case SearchStrategyKind::Hybrid: {
        if (!space.pointEncodable()) {
            SL_WARN("hybrid search: the mapspace's tiling axes exceed ",
                    "the materialization limits, so candidates cannot ",
                    "be encoded for refinement; the search degenerates ",
                    "to pure random sampling");
        }
        std::int64_t warmup = hybrid_warmup > 0
            ? hybrid_warmup
            : std::max<std::int64_t>(1, budget / 4);
        return std::make_unique<HybridSearch>(space, seed, warmup);
      }
      case SearchStrategyKind::Auto:
        break;
    }
    SL_PANIC("unknown search strategy kind");
}

} // namespace sparseloop
