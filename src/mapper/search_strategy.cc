/**
 * @file
 * Search-strategy implementations over the mapspace IR.
 */

#include "mapper/search_strategy.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"

namespace sparseloop {

void
SearchStrategy::observe(const std::vector<SearchCandidate> &batch,
                        const std::vector<double> &objectives)
{
    (void)batch;
    (void)objectives;
}

void
SearchStrategy::warmStart(const std::vector<MapSpace::Point> &points)
{
    (void)points;
}

// ---------------------------------------------------------------------------
// RandomSearch
// ---------------------------------------------------------------------------

RandomSearch::RandomSearch(const MapSpace &space, std::uint64_t seed)
    : space_(space), seed_(seed)
{
}

std::vector<SearchCandidate>
RandomSearch::propose(int max_count)
{
    std::vector<SearchCandidate> batch;
    batch.reserve(static_cast<std::size_t>(std::max(0, max_count)));
    for (int i = 0; i < max_count; ++i) {
        std::int64_t index = next_++;
        // seed + index is the historical per-candidate derivation; a
        // given index yields the same candidate at any batch size.
        batch.push_back(
            {index,
             space_.sampleMapping(
                 seed_ + static_cast<std::uint64_t>(index))});
    }
    return batch;
}

// ---------------------------------------------------------------------------
// ExhaustiveSearch
// ---------------------------------------------------------------------------

ExhaustiveSearch::ExhaustiveSearch(const MapSpace &space)
    : space_(space)
{
    SL_ASSERT(space_.size().enumerable >= 0,
              "exhaustive search requires an enumerable mapspace");
}

std::vector<SearchCandidate>
ExhaustiveSearch::propose(int max_count)
{
    std::vector<SearchCandidate> batch;
    const std::int64_t total = space_.size().enumerable;
    while (max_count-- > 0 && next_ < total) {
        batch.push_back({next_, space_.mappingAt(next_)});
        ++next_;
    }
    return batch;
}

// ---------------------------------------------------------------------------
// HybridSearch
// ---------------------------------------------------------------------------

HybridSearch::HybridSearch(const MapSpace &space, std::uint64_t seed,
                           std::int64_t warmup)
    : space_(space), seed_(seed),
      warmup_(std::max<std::int64_t>(1, warmup)),
      random_left_(warmup_),
      incumbent_obj_(std::numeric_limits<double>::infinity())
{
}

std::vector<SearchCandidate>
HybridSearch::proposeRandom(int count)
{
    std::vector<SearchCandidate> batch;
    batch.reserve(static_cast<std::size_t>(std::max(0, count)));
    for (int i = 0; i < count; ++i) {
        batch.push_back(
            {next_++,
             space_.sampleMapping(
                 seed_ + static_cast<std::uint64_t>(next_seed_++))});
    }
    refining_ = false;
    return batch;
}

void
HybridSearch::warmStart(const std::vector<MapSpace::Point> &points)
{
    warm_pending_ = points;
}

std::vector<SearchCandidate>
HybridSearch::propose(int max_count)
{
    if (max_count <= 0) {
        return {};
    }
    // Warm-start points go out ahead of the random warmup; observe()
    // adopts an improving one as the incumbent like any candidate.
    if (!warm_pending_.empty()) {
        std::vector<SearchCandidate> batch;
        std::size_t take = std::min<std::size_t>(
            static_cast<std::size_t>(max_count), warm_pending_.size());
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(
                {next_++, space_.materialize(warm_pending_[i])});
        }
        warm_pending_.erase(
            warm_pending_.begin(),
            warm_pending_.begin() + static_cast<std::ptrdiff_t>(take));
        refining_ = false;
        return batch;
    }
    // Warmup/restart: pure random while the exploration allowance
    // lasts. With no refinable incumbent after a window (all
    // candidates invalid or un-encodable), grant another one.
    if (pending_.empty() && outstanding_ == 0) {
        if (random_left_ == 0 && !incumbent_) {
            random_left_ = warmup_;
        }
        if (random_left_ > 0) {
            std::int64_t want =
                std::min<std::int64_t>(max_count, random_left_);
            auto batch = proposeRandom(static_cast<int>(want));
            random_left_ -= static_cast<std::int64_t>(batch.size());
            return batch;
        }
        // Start a refinement round: fix the incumbent's full
        // neighborhood now and stream it out; the improve-or-restart
        // decision falls at the round boundary (in observe), so the
        // proposal sequence is independent of the driver's batch size.
        pending_ = space_.neighbors(*incumbent_);
        round_improved_ = false;
        if (pending_.empty()) {
            // Isolated point: only random exploration is left.
            random_left_ = warmup_;
            return propose(max_count);
        }
    }
    std::vector<SearchCandidate> batch;
    std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(max_count), pending_.size());
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back({next_++, space_.materialize(pending_[i])});
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    outstanding_ += static_cast<std::int64_t>(take);
    refining_ = true;
    return batch;
}

void
HybridSearch::observe(const std::vector<SearchCandidate> &batch,
                      const std::vector<double> &objectives)
{
    SL_ASSERT(batch.size() == objectives.size(),
              "objective feedback size mismatch");
    bool improved = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (objectives[i] < incumbent_obj_) {
            auto point = space_.encode(batch[i].mapping);
            if (point) {
                incumbent_ = std::move(point);
                incumbent_obj_ = objectives[i];
                improved = true;
            }
        }
    }
    if (!refining_) {
        return;
    }
    outstanding_ -= static_cast<std::int64_t>(batch.size());
    round_improved_ = round_improved_ || improved;
    if (outstanding_ == 0 && pending_.empty()) {
        // Round boundary: a fruitless full neighborhood means a local
        // optimum — grant another random-exploration window (the
        // incumbent survives, so any later improvement refines again).
        if (!round_improved_) {
            random_left_ = warmup_;
        }
        refining_ = false;
    }
}

// ---------------------------------------------------------------------------
// RoundStrategy
// ---------------------------------------------------------------------------

RoundStrategy::RoundStrategy(const MapSpace &space, std::uint64_t seed)
    : space_(space), seed_(seed), degenerate_(!space.pointEncodable())
{
}

MapSpace::Point
RoundStrategy::nextSamplePoint()
{
    return space_.samplePoint(
        seed_ + static_cast<std::uint64_t>(next_seed_++));
}

std::vector<SearchCandidate>
RoundStrategy::propose(int max_count)
{
    std::vector<SearchCandidate> batch;
    if (max_count <= 0) {
        return batch;
    }
    if (degenerate_) {
        // No coordinate form available: seeded random sampling, the
        // same candidate derivation RandomSearch uses.
        batch.reserve(static_cast<std::size_t>(max_count));
        for (int i = 0; i < max_count; ++i) {
            batch.push_back(
                {next_++,
                 space_.sampleMapping(
                     seed_ + static_cast<std::uint64_t>(next_seed_++))});
        }
        return batch;
    }
    if (round_proposed_ == round_points_.size() &&
        round_observed_ == round_points_.size()) {
        // Previous round fully proposed and observed: fix the next
        // round now. Streaming it out across propose() calls keeps the
        // proposal sequence independent of the driver's batch size.
        round_points_.clear();
        buildRound(round_points_);
        SL_ASSERT(!round_points_.empty(),
                  "a search round must contain at least one point");
        round_proposed_ = 0;
        round_observed_ = 0;
        round_objectives_.assign(
            round_points_.size(),
            std::numeric_limits<double>::infinity());
    }
    std::size_t take = std::min<std::size_t>(
        static_cast<std::size_t>(max_count),
        round_points_.size() - round_proposed_);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(
            {next_++,
             space_.materialize(round_points_[round_proposed_ + i])});
    }
    round_proposed_ += take;
    return batch;
}

void
RoundStrategy::observe(const std::vector<SearchCandidate> &batch,
                       const std::vector<double> &objectives)
{
    SL_ASSERT(batch.size() == objectives.size(),
              "objective feedback size mismatch");
    if (degenerate_) {
        return;
    }
    SL_ASSERT(round_observed_ + objectives.size() <= round_proposed_,
              "observed more candidates than proposed this round");
    for (double obj : objectives) {
        round_objectives_[round_observed_++] = obj;
    }
    if (round_observed_ == round_points_.size()) {
        roundComplete(round_points_, round_objectives_);
    }
}

// ---------------------------------------------------------------------------
// AnnealingSearch
// ---------------------------------------------------------------------------

AnnealingSearch::AnnealingSearch(const MapSpace &space,
                                 std::uint64_t seed, std::int64_t budget,
                                 AnnealingOptions options)
    : RoundStrategy(space, seed), options_(options)
{
    options_.chains = std::max(1, options_.chains);
    temperature_ = std::max(options_.initial_temperature, 1e-12);
    const double final_t = std::min(
        std::max(options_.final_temperature, 1e-12), temperature_);
    if (options_.cooling > 0.0) {
        cooling_ = std::min(options_.cooling, 1.0);
    } else {
        // Spread the schedule over the move rounds the budget affords
        // (round 0 seeds the chains and takes no temperature step).
        const std::int64_t rounds = std::max<std::int64_t>(
            1, budget / options_.chains - 1);
        cooling_ = std::pow(final_t / temperature_,
                            1.0 / static_cast<double>(rounds));
    }
    chains_.resize(static_cast<std::size_t>(options_.chains));
    for (std::size_t i = 0; i < chains_.size(); ++i) {
        // Distinct deterministic streams per chain.
        chains_[i].rng.seed(
            seed ^ (0x9E3779B97F4A7C15ull * (i + 1)));
    }
}

void
AnnealingSearch::warmStart(const std::vector<MapSpace::Point> &points)
{
    warm_points_ = points;
    if (warm_points_.size() > chains_.size()) {
        warm_points_.resize(chains_.size());
    }
}

void
AnnealingSearch::buildRound(std::vector<MapSpace::Point> &out)
{
    out.reserve(chains_.size());
    if (!initialized_) {
        // Round 0: seed every chain — warm-start elites first, seeded
        // random samples for the rest.
        for (std::size_t i = 0; i < chains_.size(); ++i) {
            out.push_back(i < warm_points_.size() ? warm_points_[i]
                                                  : nextSamplePoint());
        }
        return;
    }
    // Move round: one uniformly drawn neighbor per chain; an isolated
    // chain teleports to a fresh random point.
    for (Chain &chain : chains_) {
        auto move = space_.randomNeighbor(chain.point, chain.rng);
        out.push_back(move ? *std::move(move) : nextSamplePoint());
    }
}

void
AnnealingSearch::roundComplete(
    const std::vector<MapSpace::Point> &points,
    const std::vector<double> &objectives)
{
    if (!initialized_) {
        for (std::size_t i = 0; i < chains_.size(); ++i) {
            chains_[i].point = points[i];
            chains_[i].objective = objectives[i];
        }
        initialized_ = true;
        return;
    }
    for (std::size_t i = 0; i < chains_.size(); ++i) {
        Chain &chain = chains_[i];
        const double current = chain.objective;
        const double candidate = objectives[i];
        bool accept;
        if (candidate < current) {
            accept = true;
        } else if (!std::isfinite(current)) {
            // Both invalid: keep walking so the chain can escape an
            // all-invalid region instead of freezing on it.
            accept = true;
        } else if (!std::isfinite(candidate)) {
            accept = false;
        } else {
            // Metropolis on the relative worsening: scale-free across
            // objectives whose magnitudes differ by orders of
            // magnitude (EDP vs cycles).
            const double scale = std::max(std::abs(current), 1e-300);
            const double worsening = (candidate - current) / scale;
            std::uniform_real_distribution<double> unit(0.0, 1.0);
            accept = unit(chain.rng) <
                std::exp(-worsening / temperature_);
        }
        if (accept) {
            chain.point = points[i];
            chain.objective = candidate;
        }
    }
    temperature_ *= cooling_;
}

// ---------------------------------------------------------------------------
// GeneticSearch
// ---------------------------------------------------------------------------

GeneticSearch::GeneticSearch(const MapSpace &space, std::uint64_t seed,
                             GeneticOptions options)
    : RoundStrategy(space, seed), options_(options),
      rng_(seed ^ 0xA5A5F00DCAFEBEEFull)
{
    options_.population = std::max(2, options_.population);
    options_.elites =
        std::min(std::max(0, options_.elites), options_.population - 1);
    options_.tournament = std::max(1, options_.tournament);
    options_.mutation_rate =
        std::min(std::max(options_.mutation_rate, 0.0), 1.0);
}

void
GeneticSearch::warmStart(const std::vector<MapSpace::Point> &points)
{
    warm_points_ = points;
    const auto cap = static_cast<std::size_t>(options_.population);
    if (warm_points_.size() > cap) {
        warm_points_.resize(cap);
    }
}

std::vector<std::size_t>
GeneticSearch::ranked(const std::vector<Member> &members)
{
    std::vector<std::size_t> order(members.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (members[a].objective != members[b].objective) {
                      return members[a].objective < members[b].objective;
                  }
                  return members[a].birth < members[b].birth;
              });
    return order;
}

std::size_t
GeneticSearch::selectParent()
{
    std::uniform_int_distribution<std::size_t> pick(
        0, parents_.size() - 1);
    std::size_t best = pick(rng_);
    for (int t = 1; t < options_.tournament; ++t) {
        std::size_t challenger = pick(rng_);
        const Member &a = parents_[best];
        const Member &b = parents_[challenger];
        if (b.objective < a.objective ||
            (b.objective == a.objective && b.birth < a.birth)) {
            best = challenger;
        }
    }
    return best;
}

void
GeneticSearch::buildRound(std::vector<MapSpace::Point> &out)
{
    round_births_.clear();
    const int population = options_.population;
    if (parents_.empty()) {
        // Generation 0: warm-start elites first, seeded samples after.
        out.reserve(static_cast<std::size_t>(population));
        for (int i = 0; i < population; ++i) {
            const auto idx = static_cast<std::size_t>(i);
            out.push_back(idx < warm_points_.size() ? warm_points_[idx]
                                                    : nextSamplePoint());
            round_births_.push_back(next_birth_++);
        }
        return;
    }
    // Elites survive as-is (their objectives are already known, so
    // they are not re-proposed); the rest of the generation is bred.
    const std::vector<std::size_t> order = ranked(parents_);
    carried_.clear();
    for (int e = 0; e < options_.elites; ++e) {
        carried_.push_back(parents_[order[static_cast<std::size_t>(e)]]);
    }
    const int offspring =
        population - static_cast<int>(carried_.size());
    out.reserve(static_cast<std::size_t>(offspring));
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (int i = 0; i < offspring; ++i) {
        const Member &pa = parents_[selectParent()];
        const Member &pb = parents_[selectParent()];
        MapSpace::Point child =
            space_.crossover(pa.point, pb.point, rng_);
        if (unit(rng_) < options_.mutation_rate) {
            if (auto move = space_.randomNeighbor(child, rng_)) {
                child = *std::move(move);
            }
        }
        out.push_back(std::move(child));
        round_births_.push_back(next_birth_++);
    }
}

void
GeneticSearch::roundComplete(
    const std::vector<MapSpace::Point> &points,
    const std::vector<double> &objectives)
{
    std::vector<Member> next = std::move(carried_);
    carried_.clear();
    next.reserve(next.size() + points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        next.push_back({points[i], objectives[i], round_births_[i]});
    }
    parents_ = std::move(next);
}

// ---------------------------------------------------------------------------
// HierarchicalSearch
// ---------------------------------------------------------------------------

namespace {

/** Round size of the coarse sweep and of the random fallback phase. */
constexpr std::size_t kHierarchicalRound = 64;

} // namespace

HierarchicalSearch::HierarchicalSearch(const MapSpace &space,
                                       std::uint64_t seed,
                                       std::int64_t budget,
                                       HierarchicalOptions options)
    : RoundStrategy(space, seed), options_(options)
{
    options_.refine_width = std::max(1, options_.refine_width);
    options_.keeps_per_tiling = std::max(1, options_.keeps_per_tiling);
    if (options_.coarse_budget <= 0) {
        options_.coarse_budget = std::max<std::int64_t>(1, budget / 2);
    }
    if (degenerate_) {
        return;  // base class falls back to seeded random sampling
    }
    // Coarse axis: every tiling when they fit the allowance, an even
    // stride over the tiling index range otherwise.
    const std::int64_t tilings = space_.tilingCount();
    const std::int64_t want_tilings = std::max<std::int64_t>(
        1, options_.coarse_budget / options_.keeps_per_tiling);
    const std::int64_t n = std::min(tilings, want_tilings);
    for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t t =
            tilings <= want_tilings ? i : i * (tilings / n);
        for (MapSpace::Point &p :
             space_.coarsePoints(t, options_.keeps_per_tiling)) {
            coarse_pending_.push_back(std::move(p));
        }
    }
}

void
HierarchicalSearch::warmStart(const std::vector<MapSpace::Point> &points)
{
    if (degenerate_) {
        return;
    }
    // Scored ahead of the sweep; they compete for refinement slots.
    coarse_pending_.insert(coarse_pending_.begin(), points.begin(),
                           points.end());
}

void
HierarchicalSearch::buildRound(std::vector<MapSpace::Point> &out)
{
    if (!coarse_done_) {
        const std::size_t take =
            std::min(kHierarchicalRound,
                     coarse_pending_.size() - coarse_next_);
        out.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(coarse_pending_[coarse_next_ + i]);
        }
        return;
    }
    // Refinement: one full neighborhood per surviving incumbent,
    // streamed as a single round. The improve-or-retire decision per
    // incumbent falls at the round boundary.
    refine_slices_.clear();
    for (const Scored &inc : incumbents_) {
        const std::size_t begin = out.size();
        for (MapSpace::Point &p : space_.neighbors(inc.point)) {
            out.push_back(std::move(p));
        }
        refine_slices_.emplace_back(begin, out.size());
    }
    if (out.empty()) {
        // Every incumbent stalled (or is isolated): spend the rest of
        // the budget on seeded random exploration.
        incumbents_.clear();
        out.reserve(kHierarchicalRound);
        for (std::size_t i = 0; i < kHierarchicalRound; ++i) {
            out.push_back(nextSamplePoint());
        }
        refine_slices_.clear();
    }
}

void
HierarchicalSearch::roundComplete(
    const std::vector<MapSpace::Point> &points,
    const std::vector<double> &objectives)
{
    if (!coarse_done_) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            coarse_scored_.push_back(
                {points[i], objectives[i], next_order_++});
        }
        coarse_next_ += points.size();
        if (coarse_next_ < coarse_pending_.size()) {
            return;
        }
        // Coarse phase over: the best cells seed the refinement.
        coarse_done_ = true;
        std::sort(coarse_scored_.begin(), coarse_scored_.end(),
                  [](const Scored &a, const Scored &b) {
                      if (a.objective != b.objective) {
                          return a.objective < b.objective;
                      }
                      return a.order < b.order;
                  });
        for (const Scored &s : coarse_scored_) {
            if (!std::isfinite(s.objective) ||
                static_cast<int>(incumbents_.size()) >=
                    options_.refine_width) {
                break;
            }
            incumbents_.push_back(s);
        }
        coarse_scored_.clear();
        coarse_pending_.clear();
        return;
    }
    if (refine_slices_.empty()) {
        return;  // random fallback round: nothing to update
    }
    // Greedy step per incumbent: move to its best strictly improving
    // neighbor (ties broken by position), retire it otherwise.
    std::vector<Scored> survivors;
    for (std::size_t k = 0; k < incumbents_.size(); ++k) {
        const auto [begin, end] = refine_slices_[k];
        std::size_t best = begin;
        for (std::size_t i = begin; i < end; ++i) {
            if (objectives[i] < objectives[best]) {
                best = i;
            }
        }
        if (begin < end &&
            objectives[best] < incumbents_[k].objective) {
            survivors.push_back(
                {points[best], objectives[best], next_order_++});
        }
    }
    incumbents_ = std::move(survivors);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

namespace {

/** Warn once that a non-encodable space demotes coordinate-based
 *  strategies to seeded random sampling. */
void
warnNotEncodable(const MapSpace &space, const char *what)
{
    if (!space.pointEncodable()) {
        SL_WARN(what, ": the mapspace's tiling axes exceed the ",
                "materialization limits, so candidates cannot be ",
                "encoded as points; the search degenerates to pure ",
                "random sampling");
    }
}

} // namespace

std::unique_ptr<SearchStrategy>
makeSearchStrategy(SearchStrategyKind kind, const MapSpace &space,
                   std::uint64_t seed, std::int64_t budget,
                   const SearchTuning &tuning)
{
    if (kind == SearchStrategyKind::Auto) {
        const std::int64_t enumerable = space.size().enumerable;
        kind = (enumerable >= 0 && enumerable <= budget)
            ? SearchStrategyKind::Exhaustive
            : SearchStrategyKind::Random;
    }
    switch (kind) {
      case SearchStrategyKind::Random:
        return std::make_unique<RandomSearch>(space, seed);
      case SearchStrategyKind::Exhaustive:
        if (space.size().enumerable < 0) {
            SL_FATAL("exhaustive search requested but the mapspace is ",
                     "not enumerable (~", space.size().points,
                     " points exceed the materialization limits); ",
                     "use Random/Hybrid or raise MapSpaceOptions");
        }
        return std::make_unique<ExhaustiveSearch>(space);
      case SearchStrategyKind::Hybrid: {
        warnNotEncodable(space, "hybrid search");
        std::int64_t warmup = tuning.hybrid_warmup > 0
            ? tuning.hybrid_warmup
            : std::max<std::int64_t>(1, budget / 4);
        return std::make_unique<HybridSearch>(space, seed, warmup);
      }
      case SearchStrategyKind::Annealing:
        warnNotEncodable(space, "annealing search");
        return std::make_unique<AnnealingSearch>(space, seed, budget,
                                                 tuning.annealing);
      case SearchStrategyKind::Genetic:
        warnNotEncodable(space, "genetic search");
        return std::make_unique<GeneticSearch>(space, seed,
                                               tuning.genetic);
      case SearchStrategyKind::Hierarchical:
        warnNotEncodable(space, "hierarchical search");
        return std::make_unique<HierarchicalSearch>(
            space, seed, budget, tuning.hierarchical);
      case SearchStrategyKind::Auto:
        break;
    }
    SL_PANIC("unknown search strategy kind");
}

} // namespace sparseloop
