/**
 * @file
 * Cross-design-point warm starts for DSE sweeps.
 *
 * A sweep searches many neighboring design points — SAF variants over
 * one dataflow, density regimes over one workload shape, scaled
 * architectures — whose best mappings are strongly correlated. Without
 * reuse, every design point's search restarts from scratch and spends
 * most of its budget rediscovering the same structure. A
 * `WarmStartPool` closes that loop: each search records its best
 * (mapping, metric-vector) into the shared pool, and the next design
 * point's search re-ranks the pool under its *own* `ObjectiveSpec`,
 * re-encodes the elites into its own constraint-pruned `MapSpace`,
 * and uses them as starting points (annealing chain seeds, genetic
 * generation-0 members, hybrid pre-warmup candidates).
 *
 * Storing full metric vectors (not just the recording search's
 * scalar) is what lets heterogeneous sweeps share one pool: an
 * energy-constrained search can warm-start from the elites of an
 * EDP-optimized sibling, ranked by what *it* cares about.
 *
 * Re-encoding is the safety valve: `MapSpace::encode` fails cleanly
 * for a mapping that does not fit the consuming space (different
 * storage-level count, tile factors that do not divide the new
 * workload's bounds, a constraint violation), so elites from an
 * incompatible design point are silently skipped instead of breaking
 * the search. Warm candidates are proposed and evaluated like any
 * others — they count against the sample budget and preserve the
 * bit-identity of results across thread counts.
 *
 * Quickstart (a sweep driver):
 * @code
 *   auto pool = std::make_shared<WarmStartPool>();
 *   for (const DesignPoint &design : sweep) {
 *       MapperOptions opts;
 *       opts.strategy = SearchStrategyKind::Annealing;
 *       opts.warm_start = pool;  // seeded by earlier design points
 *       MapperResult r =
 *           ParallelMapper(w, design.arch, design.safs, opts).search();
 *       // r.warm_start_candidates: elites that re-encoded and seeded
 *       // this search; r.mapping was recorded back into the pool.
 *   }
 * @endcode
 */

#ifndef SPARSELOOP_MAPPER_WARM_START_HH
#define SPARSELOOP_MAPPER_WARM_START_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "mapper/objective.hh"
#include "mapping/mapping.hh"

namespace sparseloop {

/**
 * A bounded, thread-safe pool of elite (mapping, metric-vector) pairs
 * shared across the searches of a DSE sweep. Entries are ranked by
 * the objective the recording search reported (lower is better;
 * insertion order breaks ties, older first) and the pool keeps only
 * the `capacity` best under that ranking. Objectives from different
 * design points are not strictly comparable — the ranking is a
 * heuristic for which structures are worth re-seeding, and every
 * consuming search re-ranks the elites under its own `ObjectiveSpec`
 * (and re-evaluates them under its own design) anyway.
 */
class WarmStartPool
{
  public:
    /** @param capacity elites retained (the `capacity` best seen). */
    explicit WarmStartPool(std::size_t capacity = 16);

    /**
     * Record one elite with its full metric vector and the recording
     * search's scalar objective (the pool's retention ranking). A
     * mapping equal to an existing entry never duplicates: it keeps
     * the better of the two objectives (and that record's metrics).
     * Entries beyond the capacity best are dropped. O(n) per call:
     * the pool stays sorted by insertion into position, never by
     * re-sorting.
     */
    void record(const Mapping &mapping, const MetricVector &metrics,
                double objective);

    /** The pooled elite mappings, best recorded objective first. */
    std::vector<Mapping> elites() const;

    /**
     * The pooled elite mappings re-ranked under a consuming search's
     * spec: best first by `ObjectiveSpec::compare` over the stored
     * metric vectors, insertion order breaking ties (older first).
     * This is how an energy-constrained search warm-starts from an
     * EDP-optimized sibling's elites.
     */
    std::vector<Mapping> elites(const ObjectiveSpec &spec) const;

    /**
     * One exported elite: the full (objective, metrics, mapping)
     * record, the currency of disk persistence
     * (service/persistence.hh). Feeding an `Elite` back through
     * `record()` reproduces the entry (ticks are re-assigned in
     * export order, which preserves the retention ranking).
     */
    struct Elite
    {
        double objective = 0.0;
        MetricVector metrics;
        Mapping mapping;
    };

    /** The pooled elites in retention order (best recorded first). */
    std::vector<Elite> exportElites() const;

    /** Current entry count (<= capacity). */
    std::size_t size() const;

    /** The retention bound. */
    std::size_t capacity() const { return capacity_; }

  private:
    /** One pooled elite; `tick` is the insertion rank (tie-break). */
    struct Entry
    {
        double objective;
        MetricVector metrics;
        std::int64_t tick;
        Mapping mapping;
    };

    /** The retention order: (recorded objective, tick), best first. */
    static bool entryBefore(const Entry &a, const Entry &b);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::int64_t next_tick_ = 0;
    /** Sorted by `entryBefore`, best first. */
    std::vector<Entry> entries_;
};

} // namespace sparseloop

#endif // SPARSELOOP_MAPPER_WARM_START_HH
