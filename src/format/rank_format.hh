/**
 * @file
 * Per-dimension (per-rank) representation format models (Sec. 3.1.1 and
 * Sec. 5.3.3). Each model answers: given a fiber of a given shape and
 * occupancy, how many metadata bits does this rank contribute, and does
 * it keep all coordinates (uncompressed) or only nonzeros (compressed)?
 */

#ifndef SPARSELOOP_FORMAT_RANK_FORMAT_HH
#define SPARSELOOP_FORMAT_RANK_FORMAT_HH

#include <cstdint>
#include <string>

namespace sparseloop {

/** The per-rank formats of Fig. 2 (plus uncompressed-with-bitmask). */
enum class RankFormatKind
{
    U,    ///< Uncompressed: explicit values, no metadata.
    UB,   ///< Uncompressed data plus a per-element bitmask (Eyeriss).
    B,    ///< Bitmask: 1 bit per coordinate, compressed payloads.
    CP,   ///< Coordinate-Payload: explicit coordinates per nonzero.
    RLE,  ///< Run-Length Encoding: zero-run length per nonzero.
    UOP,  ///< Uncompressed Offset Pairs: start/end offsets (CSR rows).
};

/** Printable name for a per-rank format. */
std::string toString(RankFormatKind kind);

/** One rank of a hierarchical tensor format. */
struct RankFormat
{
    RankFormatKind kind = RankFormatKind::U;

    /**
     * Bit width of a metadata word for CP coordinates / RLE run lengths.
     * 0 means "derive from the fiber shape" (ceil(log2(shape))).
     */
    int explicit_bits = 0;

    /** Whether payloads below this rank keep only nonzero coordinates. */
    bool compressed() const
    {
        return kind == RankFormatKind::B || kind == RankFormatKind::CP ||
               kind == RankFormatKind::RLE || kind == RankFormatKind::UOP;
    }

    /** Coordinate/run bit width for a fiber of the given shape. */
    int metadataBits(std::int64_t fiber_shape) const;

    /**
     * Expected metadata bits contributed by one fiber.
     *
     * @param fiber_shape number of possible coordinates in the fiber.
     * @param occupancy expected number of present coordinates.
     * @param payload_index_space size of the space UOP offsets index
     *        (elements under this fiber); ignored by other formats.
     * @param tensor_density overall tensor density (used by the RLE
     *        run-length overflow estimate).
     */
    double fiberMetadataBits(std::int64_t fiber_shape, double occupancy,
                             std::int64_t payload_index_space,
                             double tensor_density) const;
};

/**
 * Expected number of RLE zero-padding entries for a fiber: runs of
 * zeros longer than the encodable maximum (2^bits - 1) require extra
 * explicit zero entries. Under uniform sparsity with density d, run
 * lengths are ~geometric(d), so each nonzero expects
 * (1-d)^L / (1 - (1-d)^L) padding entries with L = 2^bits - 1.
 */
double rleExpectedPadding(double occupancy, double tensor_density,
                          int run_bits);

} // namespace sparseloop

#endif // SPARSELOOP_FORMAT_RANK_FORMAT_HH
