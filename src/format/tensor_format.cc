/**
 * @file
 * Hierarchical tensor format implementation.
 */

#include "format/tensor_format.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

TensorFormat::TensorFormat(std::vector<RankFormat> ranks, std::string name)
    : ranks_(std::move(ranks)), name_(std::move(name))
{
    if (name_.empty()) {
        for (std::size_t i = 0; i < ranks_.size(); ++i) {
            if (i) {
                name_ += "-";
            }
            name_ += toString(ranks_[i].kind);
        }
    }
}

bool
TensorFormat::anyCompressed() const
{
    return std::any_of(ranks_.begin(), ranks_.end(),
                       [](const RankFormat &r) { return r.compressed(); });
}

std::vector<std::int64_t>
TensorFormat::flattenExtents(
        const std::vector<std::int64_t> &tensor_extents) const
{
    return flattenExtents(tensor_extents.data(), tensor_extents.size());
}

std::vector<std::int64_t>
TensorFormat::flattenExtents(const std::int64_t *tensor_extents,
                             std::size_t count) const
{
    std::size_t fr = ranks_.size();
    SL_ASSERT(fr >= 1, "format without ranks");
    std::vector<std::int64_t> out(fr, 1);
    std::size_t tr = count;
    if (tr <= fr) {
        // Pad missing outer ranks with extent 1.
        for (std::size_t i = 0; i < tr; ++i) {
            out[fr - tr + i] = tensor_extents[i];
        }
        return out;
    }
    // Flatten the extra inner tensor ranks into the last format rank.
    for (std::size_t i = 0; i + 1 < fr; ++i) {
        out[i] = tensor_extents[i];
    }
    std::int64_t flat = 1;
    for (std::size_t i = fr - 1; i < tr; ++i) {
        flat *= tensor_extents[i];
    }
    out[fr - 1] = flat;
    return out;
}

TileFormatStats
TensorFormat::tileStats(const DensityModel &model,
                        const std::vector<std::int64_t> &rank_extents,
                        OccupancyEstimate estimate) const
{
    SL_ASSERT(rank_extents.size() == ranks_.size(),
              "rank extent count mismatch: ", rank_extents.size(), " vs ",
              ranks_.size());
    std::size_t n = ranks_.size();

    TileFormatStats stats;
    std::int64_t tile_elems = 1;
    for (auto e : rank_extents) {
        SL_ASSERT(e >= 1, "non-positive rank extent");
        tile_elems *= e;
    }
    stats.dense_words = tile_elems;
    stats.per_rank_metadata_bits.assign(n, 0.0);

    double d = model.tensorDensity();
    bool worst = estimate == OccupancyEstimate::WorstCase;
    double max_occ_tile =
        static_cast<double>(model.maxOccupancy(tile_elems));

    // present[i]: materialized rank-i units (i in [0, n], where level n
    // is the leaf data). fibers at rank i = present[i-1].
    std::vector<double> present(n + 1, 0.0);
    double prev_present = 1.0;      // one root fiber per tile
    std::int64_t total_units = 1;   // dense units at the current level
    bool compressed_above = false;
    std::int64_t deepest_compressed_below = 0; // subtile size at j*

    for (std::size_t i = 0; i < n; ++i) {
        total_units *= rank_extents[i];
        std::int64_t elems_below = 1;
        for (std::size_t j = i + 1; j < n; ++j) {
            elems_below *= rank_extents[j];
        }
        if (ranks_[i].compressed()) {
            compressed_above = true;
            deepest_compressed_below = elems_below;
        }
        double units;
        if (!compressed_above) {
            units = static_cast<double>(total_units);
        } else if (worst) {
            units = std::min(static_cast<double>(total_units),
                             max_occ_tile);
        } else {
            double p_empty = model.probEmpty(deepest_compressed_below);
            units = static_cast<double>(total_units) * (1.0 - p_empty);
        }
        present[i] = units;

        double fibers = prev_present;
        double occ = fibers > 0.0 ? units / fibers : 0.0;
        std::int64_t payload_space = rank_extents[i] * elems_below;
        stats.per_rank_metadata_bits[i] =
            fibers * ranks_[i].fiberMetadataBits(rank_extents[i], occ,
                                                 payload_space, d);
        stats.metadata_bits += stats.per_rank_metadata_bits[i];
        prev_present = units;
    }
    stats.data_words = present[n - 1];
    return stats;
}

void
TensorFormat::tileStatsPair(const DensityModel &model,
                            const std::int64_t *rank_extents,
                            std::size_t count,
                            TileFormatStats &expected,
                            TileFormatStats &worst,
                            ProbEmptyMemo *memo) const
{
    SL_ASSERT(count == ranks_.size(),
              "rank extent count mismatch: ", count, " vs ",
              ranks_.size());
    std::size_t n = ranks_.size();

    std::int64_t tile_elems = 1;
    for (std::size_t i = 0; i < n; ++i) {
        SL_ASSERT(rank_extents[i] >= 1, "non-positive rank extent");
        tile_elems *= rank_extents[i];
    }
    expected.dense_words = tile_elems;
    worst.dense_words = tile_elems;
    expected.metadata_bits = 0.0;
    worst.metadata_bits = 0.0;
    expected.per_rank_metadata_bits.assign(n, 0.0);
    worst.per_rank_metadata_bits.assign(n, 0.0);

    double d = model.tensorDensity();
    double max_occ_tile =
        static_cast<double>(model.maxOccupancy(tile_elems));

    // Two materialized-unit chains (tileStats' `present` recurrence),
    // one per estimate; all shared quantities are computed once.
    double prev_e = 1.0;
    double prev_w = 1.0;
    double units_e = 0.0;
    double units_w = 0.0;
    std::int64_t total_units = 1;
    // Suffix volume below rank i via exact integer division of the
    // total tile volume — same values tileStats derives by an inner
    // product loop.
    std::int64_t elems_below = tile_elems;
    bool compressed_above = false;
    std::int64_t deepest_compressed_below = 0;
    // probEmpty is a pure function of the subtile volume; memoize the
    // last (volume, result) pair since consecutive ranks often share
    // their deepest compressed subtile.
    std::int64_t memo_subtile = -1;
    double memo_p_empty = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
        total_units *= rank_extents[i];
        elems_below /= rank_extents[i];
        if (ranks_[i].compressed()) {
            compressed_above = true;
            deepest_compressed_below = elems_below;
        }
        if (!compressed_above) {
            units_e = static_cast<double>(total_units);
            units_w = units_e;
        } else {
            units_w = std::min(static_cast<double>(total_units),
                               max_occ_tile);
            if (deepest_compressed_below != memo_subtile) {
                memo_subtile = deepest_compressed_below;
                if (!memo || !memo->lookup(memo_subtile, memo_p_empty)) {
                    memo_p_empty = model.probEmpty(memo_subtile);
                    if (memo) {
                        memo->insert(memo_subtile, memo_p_empty);
                    }
                }
            }
            units_e = static_cast<double>(total_units) *
                      (1.0 - memo_p_empty);
        }
        std::int64_t payload_space = rank_extents[i] * elems_below;
        double occ_e = prev_e > 0.0 ? units_e / prev_e : 0.0;
        double bits_e =
            prev_e * ranks_[i].fiberMetadataBits(rank_extents[i], occ_e,
                                                 payload_space, d);
        expected.per_rank_metadata_bits[i] = bits_e;
        expected.metadata_bits += bits_e;
        double occ_w = prev_w > 0.0 ? units_w / prev_w : 0.0;
        double bits_w =
            prev_w * ranks_[i].fiberMetadataBits(rank_extents[i], occ_w,
                                                 payload_space, d);
        worst.per_rank_metadata_bits[i] = bits_w;
        worst.metadata_bits += bits_w;
        prev_e = units_e;
        prev_w = units_w;
    }
    expected.data_words = units_e;
    worst.data_words = units_w;
}

double
TensorFormat::metadataWordsPerDataWord(
        const DensityModel &model,
        const std::vector<std::int64_t> &rank_extents, int data_bits) const
{
    TileFormatStats stats = tileStats(model, rank_extents);
    if (stats.data_words <= 0.0) {
        return 0.0;
    }
    return stats.metadataWords(data_bits) / stats.data_words;
}

namespace {

RankFormat
rank(RankFormatKind kind, int bits = 0)
{
    RankFormat r;
    r.kind = kind;
    r.explicit_bits = bits;
    return r;
}

} // namespace

TensorFormat
makeUncompressed(std::size_t rank_count)
{
    std::vector<RankFormat> ranks(rank_count, rank(RankFormatKind::U));
    return TensorFormat(std::move(ranks), "U");
}

TensorFormat
makeBitmask(std::size_t rank_count)
{
    std::vector<RankFormat> ranks(rank_count, rank(RankFormatKind::B));
    return TensorFormat(std::move(ranks));
}

TensorFormat
makeUncompressedBitmask(std::size_t rank_count)
{
    std::vector<RankFormat> ranks(rank_count, rank(RankFormatKind::UB));
    return TensorFormat(std::move(ranks));
}

TensorFormat
makeCsr()
{
    return TensorFormat({rank(RankFormatKind::UOP),
                         rank(RankFormatKind::CP)}, "CSR(UOP-CP)");
}

TensorFormat
makeCoo(std::size_t flattened_ranks)
{
    (void)flattened_ranks;
    return TensorFormat({rank(RankFormatKind::CP)}, "COO(CP^n)");
}

TensorFormat
makeCsb()
{
    return TensorFormat({rank(RankFormatKind::UOP),
                         rank(RankFormatKind::CP),
                         rank(RankFormatKind::CP)}, "CSB(UOP-CP-CP)");
}

TensorFormat
makeCsf(std::size_t rank_count)
{
    std::vector<RankFormat> ranks(rank_count, rank(RankFormatKind::CP));
    return TensorFormat(std::move(ranks), "CSF(CP^n)");
}

TensorFormat
makeRunLength(std::size_t rank_count, int run_bits)
{
    std::vector<RankFormat> ranks(rank_count,
                                  rank(RankFormatKind::RLE, run_bits));
    return TensorFormat(std::move(ranks));
}

TensorFormat
makeCoordinateList(int coord_bits)
{
    return TensorFormat({rank(RankFormatKind::CP, coord_bits)},
                        "CoordList(CP)");
}


std::uint64_t
TensorFormat::signature() const
{
    std::uint64_t h = math::hashCombine(math::kHashSeed, ranks_.size());
    for (const RankFormat &rank : ranks_) {
        h = math::hashCombine(h, static_cast<std::uint64_t>(rank.kind));
        h = math::hashCombine(h,
                              static_cast<std::uint64_t>(rank.explicit_bits));
    }
    return h;
}

} // namespace sparseloop
