/**
 * @file
 * Per-rank format model implementation.
 */

#include "format/rank_format.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

std::string
toString(RankFormatKind kind)
{
    switch (kind) {
      case RankFormatKind::U: return "U";
      case RankFormatKind::UB: return "UB";
      case RankFormatKind::B: return "B";
      case RankFormatKind::CP: return "CP";
      case RankFormatKind::RLE: return "RLE";
      case RankFormatKind::UOP: return "UOP";
    }
    SL_PANIC("unknown rank format");
}

int
RankFormat::metadataBits(std::int64_t fiber_shape) const
{
    if (explicit_bits > 0) {
        return explicit_bits;
    }
    return std::max(1, math::ceilLog2(fiber_shape));
}

double
rleExpectedPadding(double occupancy, double tensor_density, int run_bits)
{
    if (occupancy <= 0.0) {
        return 0.0;
    }
    double max_run = std::pow(2.0, run_bits) - 1.0;
    double zero_frac = 1.0 - std::clamp(tensor_density, 0.0, 1.0);
    if (zero_frac <= 0.0) {
        return 0.0;
    }
    // P(run >= L) under a geometric run-length law.
    double p_over = std::pow(zero_frac, max_run);
    if (p_over >= 1.0) {
        return 0.0;
    }
    return occupancy * p_over / (1.0 - p_over);
}

double
RankFormat::fiberMetadataBits(std::int64_t fiber_shape, double occupancy,
                              std::int64_t payload_index_space,
                              double tensor_density) const
{
    occupancy = std::max(0.0, occupancy);
    switch (kind) {
      case RankFormatKind::U:
        return 0.0;
      case RankFormatKind::UB:
      case RankFormatKind::B:
        return static_cast<double>(fiber_shape);
      case RankFormatKind::CP:
        return occupancy * metadataBits(fiber_shape);
      case RankFormatKind::RLE: {
        int bits = metadataBits(fiber_shape);
        double entries = occupancy +
            rleExpectedPadding(occupancy, tensor_density, bits);
        return entries * bits;
      }
      case RankFormatKind::UOP: {
        int off_bits = explicit_bits > 0
            ? explicit_bits
            : std::max(1, math::ceilLog2(payload_index_space + 1));
        return static_cast<double>(fiber_shape + 1) * off_bits;
      }
    }
    SL_PANIC("unknown rank format");
}

} // namespace sparseloop
