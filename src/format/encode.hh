/**
 * @file
 * Concrete tensor encoders: build the actual compressed representation
 * of a SparseTensor in a given hierarchical format and measure its
 * exact storage cost. These are the ground truth the statistical
 * format models (Sec. 5.3.3) are validated against, and they make the
 * fibertree-to-format connection concrete: each format rank stores one
 * tree level's coordinates in its own encoding.
 */

#ifndef SPARSELOOP_FORMAT_ENCODE_HH
#define SPARSELOOP_FORMAT_ENCODE_HH

#include <cstdint>
#include <vector>

#include "format/tensor_format.hh"
#include "tensor/fibertree.hh"

namespace sparseloop {

/** Exact cost of one encoded tensor. */
struct EncodedTensor
{
    /** Payload values stored (nonzeros, plus explicit zeros for
     *  uncompressed ranks and RLE overflow padding). */
    std::int64_t data_words = 0;
    /** Exact metadata bits, per format rank (top first). */
    std::vector<std::int64_t> per_rank_metadata_bits;

    std::int64_t metadataBits() const
    {
        std::int64_t total = 0;
        for (auto b : per_rank_metadata_bits) {
            total += b;
        }
        return total;
    }
    double totalBits(int data_bits) const
    {
        return static_cast<double>(data_words) * data_bits +
               static_cast<double>(metadataBits());
    }
    double compressionRate(std::int64_t dense_words, int data_bits) const
    {
        double enc = totalBits(data_bits);
        return enc <= 0.0
            ? 1.0
            : static_cast<double>(dense_words) * data_bits / enc;
    }
};

/**
 * Encode @p tensor in @p format.
 *
 * The tensor's ranks are adapted to the format's rank count the same
 * way the statistical analyzer does (outer ranks padded, extra inner
 * ranks flattened), so encoded sizes are directly comparable with
 * TensorFormat::tileStats() on the same tensor.
 */
EncodedTensor encodeTensor(const SparseTensor &tensor,
                           const TensorFormat &format);

} // namespace sparseloop

#endif // SPARSELOOP_FORMAT_ENCODE_HH
