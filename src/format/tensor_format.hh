/**
 * @file
 * Hierarchical tensor representation formats (Table 2): a stack of
 * per-rank formats, top (outermost) rank first, e.g. CSR = UOP-CP,
 * CSB = UOP-CP-CP, 2D COO = CP^2 (flattened). The format analyzer
 * combines these with a statistical density model to derive expected
 * and worst-case storage/metadata overheads for tiles (Sec. 5.3.3).
 */

#ifndef SPARSELOOP_FORMAT_TENSOR_FORMAT_HH
#define SPARSELOOP_FORMAT_TENSOR_FORMAT_HH

#include <string>
#include <vector>

#include "density/density_model.hh"
#include "format/rank_format.hh"

namespace sparseloop {

/** Expected storage cost of one tile in a given format. */
struct TileFormatStats
{
    /** Payload slots actually stored (values, incl. explicit zeros). */
    double data_words = 0.0;
    /** Total metadata bits across ranks. */
    double metadata_bits = 0.0;
    /** Per-rank metadata bits (top first). */
    std::vector<double> per_rank_metadata_bits;
    /** Dense element count of the tile. */
    std::int64_t dense_words = 0;

    /** metadata expressed in data-word units. */
    double metadataWords(int data_bits) const
    {
        return data_bits <= 0 ? 0.0 : metadata_bits / data_bits;
    }
    /** Total occupied bits (payload + metadata). */
    double totalBits(int data_bits) const
    {
        return data_words * data_bits + metadata_bits;
    }
    /** Dense bits / encoded bits; > 1 means the format saves space. */
    double compressionRate(int data_bits) const
    {
        double enc = totalBits(data_bits);
        return enc <= 0.0
            ? 1.0
            : static_cast<double>(dense_words) * data_bits / enc;
    }
};

/**
 * Optional cross-call memo for DensityModel::probEmpty keyed by
 * subtile volume. probEmpty is a pure function of (model, volume), so
 * a caller analyzing several tiles of the SAME tensor may share one
 * memo across tileStatsPair calls to skip repeated evaluations — a
 * hit returns the identical double the recomputation would produce.
 * Never share a memo across different density models. Fixed capacity:
 * once full, further distinct volumes are simply recomputed.
 */
struct ProbEmptyMemo
{
    static constexpr int kCapacity = 8;
    int count = 0;
    std::int64_t volumes[kCapacity] = {};
    double p_empty[kCapacity] = {};

    bool lookup(std::int64_t volume, double &out) const
    {
        for (int i = 0; i < count; ++i) {
            if (volumes[i] == volume) {
                out = p_empty[i];
                return true;
            }
        }
        return false;
    }
    void insert(std::int64_t volume, double p)
    {
        if (count < kCapacity) {
            volumes[count] = volume;
            p_empty[count] = p;
            ++count;
        }
    }
};

/** Which occupancy estimate drives the stats. */
enum class OccupancyEstimate
{
    Expected,  ///< mean occupancy (traffic/energy analysis)
    WorstCase, ///< max occupancy (capacity / mapping validity)
};

class TensorFormat
{
  public:
    TensorFormat() = default;
    explicit TensorFormat(std::vector<RankFormat> ranks,
                          std::string name = "");

    bool empty() const { return ranks_.empty(); }
    std::size_t rankCount() const { return ranks_.size(); }
    const std::vector<RankFormat> &ranks() const { return ranks_; }
    const std::string &name() const { return name_; }

    /** Whether any rank compresses away zero coordinates. */
    bool anyCompressed() const;

    /**
     * Storage statistics for a tile.
     *
     * @param model density model of the full tensor.
     * @param rank_extents tile extents per *format* rank, top first.
     *        Use flattenExtents() to adapt tensor-rank extents.
     * @param estimate expected vs. worst-case occupancy.
     */
    TileFormatStats tileStats(const DensityModel &model,
                              const std::vector<std::int64_t> &rank_extents,
                              OccupancyEstimate estimate =
                                  OccupancyEstimate::Expected) const;

    /**
     * Adapt per-tensor-rank tile extents (outer first) to this format's
     * rank count: extra inner tensor ranks are flattened into the
     * format's last rank; missing outer ranks are padded with 1.
     */
    std::vector<std::int64_t>
    flattenExtents(const std::vector<std::int64_t> &tensor_extents) const;

    /** Raw-buffer variant for callers whose extents live in inline
     *  storage (the engine hot path); identical results. */
    std::vector<std::int64_t>
    flattenExtents(const std::int64_t *tensor_extents,
                   std::size_t count) const;

    /**
     * Allocation-free flattenExtents: fills @p out (any vector-like
     * type with assign/operator[]) instead of returning a fresh
     * std::vector. Identical arithmetic to flattenExtents().
     */
    template <class Vec>
    void flattenExtentsInto(const std::int64_t *tensor_extents,
                            std::size_t count, Vec &out) const
    {
        std::size_t fr = ranks_.size();
        out.assign(fr, 1);
        if (count <= fr) {
            for (std::size_t i = 0; i < count; ++i) {
                out[fr - count + i] = tensor_extents[i];
            }
            return;
        }
        for (std::size_t i = 0; i + 1 < fr; ++i) {
            out[i] = tensor_extents[i];
        }
        std::int64_t flat = 1;
        for (std::size_t i = fr - 1; i < count; ++i) {
            flat *= tensor_extents[i];
        }
        out[fr - 1] = flat;
    }

    /**
     * Compute the Expected and WorstCase estimates in a single rank
     * sweep, writing into caller-owned stats (whose vectors keep their
     * capacity across calls). Bit-identical to two tileStats() calls:
     * the two estimates share every input-derived quantity (dense tile
     * size, per-rank subtile volumes, max occupancy, probEmpty of the
     * deepest compressed subtile) and differ only in the materialized-
     * unit recurrence, which this method carries as two independent
     * chains with the exact per-call arithmetic. @p memo optionally
     * caches probEmpty across calls that share a density model.
     */
    void tileStatsPair(const DensityModel &model,
                       const std::int64_t *rank_extents, std::size_t count,
                       TileFormatStats &expected,
                       TileFormatStats &worst,
                       ProbEmptyMemo *memo = nullptr) const;

    /** Metadata words moved per stored data word for a tile. */
    double metadataWordsPerDataWord(const DensityModel &model,
                                    const std::vector<std::int64_t>
                                        &rank_extents,
                                    int data_bits) const;

    /**
     * Evaluation-cache identity: hashes the per-rank format kinds and
     * explicit bit widths. The display name is ignored — formats with
     * identical rank stacks behave identically.
     */
    std::uint64_t signature() const;

  private:
    std::vector<RankFormat> ranks_;
    std::string name_;
};

/** @name Classic format factories (Table 2). */
/// @{
TensorFormat makeUncompressed(std::size_t rank_count = 1);
TensorFormat makeBitmask(std::size_t rank_count = 1);
TensorFormat makeUncompressedBitmask(std::size_t rank_count = 1);
TensorFormat makeCsr();                 ///< UOP-CP
TensorFormat makeCoo(std::size_t flattened_ranks = 2); ///< CP^n
TensorFormat makeCsb();                 ///< UOP-CP-CP
TensorFormat makeCsf(std::size_t rank_count = 3); ///< CP-CP-CP
TensorFormat makeRunLength(std::size_t rank_count = 1,
                           int run_bits = 0);
TensorFormat makeCoordinateList(int coord_bits = 0); ///< 1-rank CP
/// @}

} // namespace sparseloop

#endif // SPARSELOOP_FORMAT_TENSOR_FORMAT_HH
