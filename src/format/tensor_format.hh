/**
 * @file
 * Hierarchical tensor representation formats (Table 2): a stack of
 * per-rank formats, top (outermost) rank first, e.g. CSR = UOP-CP,
 * CSB = UOP-CP-CP, 2D COO = CP^2 (flattened). The format analyzer
 * combines these with a statistical density model to derive expected
 * and worst-case storage/metadata overheads for tiles (Sec. 5.3.3).
 */

#ifndef SPARSELOOP_FORMAT_TENSOR_FORMAT_HH
#define SPARSELOOP_FORMAT_TENSOR_FORMAT_HH

#include <string>
#include <vector>

#include "density/density_model.hh"
#include "format/rank_format.hh"

namespace sparseloop {

/** Expected storage cost of one tile in a given format. */
struct TileFormatStats
{
    /** Payload slots actually stored (values, incl. explicit zeros). */
    double data_words = 0.0;
    /** Total metadata bits across ranks. */
    double metadata_bits = 0.0;
    /** Per-rank metadata bits (top first). */
    std::vector<double> per_rank_metadata_bits;
    /** Dense element count of the tile. */
    std::int64_t dense_words = 0;

    /** metadata expressed in data-word units. */
    double metadataWords(int data_bits) const
    {
        return data_bits <= 0 ? 0.0 : metadata_bits / data_bits;
    }
    /** Total occupied bits (payload + metadata). */
    double totalBits(int data_bits) const
    {
        return data_words * data_bits + metadata_bits;
    }
    /** Dense bits / encoded bits; > 1 means the format saves space. */
    double compressionRate(int data_bits) const
    {
        double enc = totalBits(data_bits);
        return enc <= 0.0
            ? 1.0
            : static_cast<double>(dense_words) * data_bits / enc;
    }
};

/** Which occupancy estimate drives the stats. */
enum class OccupancyEstimate
{
    Expected,  ///< mean occupancy (traffic/energy analysis)
    WorstCase, ///< max occupancy (capacity / mapping validity)
};

class TensorFormat
{
  public:
    TensorFormat() = default;
    explicit TensorFormat(std::vector<RankFormat> ranks,
                          std::string name = "");

    bool empty() const { return ranks_.empty(); }
    std::size_t rankCount() const { return ranks_.size(); }
    const std::vector<RankFormat> &ranks() const { return ranks_; }
    const std::string &name() const { return name_; }

    /** Whether any rank compresses away zero coordinates. */
    bool anyCompressed() const;

    /**
     * Storage statistics for a tile.
     *
     * @param model density model of the full tensor.
     * @param rank_extents tile extents per *format* rank, top first.
     *        Use flattenExtents() to adapt tensor-rank extents.
     * @param estimate expected vs. worst-case occupancy.
     */
    TileFormatStats tileStats(const DensityModel &model,
                              const std::vector<std::int64_t> &rank_extents,
                              OccupancyEstimate estimate =
                                  OccupancyEstimate::Expected) const;

    /**
     * Adapt per-tensor-rank tile extents (outer first) to this format's
     * rank count: extra inner tensor ranks are flattened into the
     * format's last rank; missing outer ranks are padded with 1.
     */
    std::vector<std::int64_t>
    flattenExtents(const std::vector<std::int64_t> &tensor_extents) const;

    /** Metadata words moved per stored data word for a tile. */
    double metadataWordsPerDataWord(const DensityModel &model,
                                    const std::vector<std::int64_t>
                                        &rank_extents,
                                    int data_bits) const;

    /**
     * Evaluation-cache identity: hashes the per-rank format kinds and
     * explicit bit widths. The display name is ignored — formats with
     * identical rank stacks behave identically.
     */
    std::uint64_t signature() const;

  private:
    std::vector<RankFormat> ranks_;
    std::string name_;
};

/** @name Classic format factories (Table 2). */
/// @{
TensorFormat makeUncompressed(std::size_t rank_count = 1);
TensorFormat makeBitmask(std::size_t rank_count = 1);
TensorFormat makeUncompressedBitmask(std::size_t rank_count = 1);
TensorFormat makeCsr();                 ///< UOP-CP
TensorFormat makeCoo(std::size_t flattened_ranks = 2); ///< CP^n
TensorFormat makeCsb();                 ///< UOP-CP-CP
TensorFormat makeCsf(std::size_t rank_count = 3); ///< CP-CP-CP
TensorFormat makeRunLength(std::size_t rank_count = 1,
                           int run_bits = 0);
TensorFormat makeCoordinateList(int coord_bits = 0); ///< 1-rank CP
/// @}

} // namespace sparseloop

#endif // SPARSELOOP_FORMAT_TENSOR_FORMAT_HH
