/**
 * @file
 * Concrete tensor encoders.
 */

#include "format/encode.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

namespace {

/** Encoding context shared by the recursive walk. */
struct Encoder
{
    const TensorFormat &format;
    std::vector<std::int64_t> rank_shapes;   ///< per format rank
    std::vector<std::int64_t> elems_below;   ///< per format rank
    EncodedTensor out;

    int rankCount() const
    {
        return static_cast<int>(format.rankCount());
    }

    /** Cost of a materialized fiber whose subtree is entirely zero. */
    void
    addEmptyFiber(int level)
    {
        if (level >= rankCount()) {
            return;
        }
        const RankFormat &rf = format.ranks()[level];
        std::int64_t shape = rank_shapes[level];
        switch (rf.kind) {
          case RankFormatKind::U:
          case RankFormatKind::UB:
            if (rf.kind == RankFormatKind::UB) {
                out.per_rank_metadata_bits[level] += shape;
            }
            if (level + 1 == rankCount()) {
                out.data_words += shape;  // explicit zeros stored
            } else {
                for (std::int64_t i = 0; i < shape; ++i) {
                    addEmptyFiber(level + 1);
                }
            }
            break;
          case RankFormatKind::B:
            out.per_rank_metadata_bits[level] += shape;
            break;
          case RankFormatKind::CP:
          case RankFormatKind::RLE:
            break;  // zero entries
          case RankFormatKind::UOP:
            out.per_rank_metadata_bits[level] +=
                static_cast<std::int64_t>(shape + 1) *
                (rf.explicit_bits > 0
                     ? rf.explicit_bits
                     : std::max(1, math::ceilLog2(
                           shape * elems_below[level] + 1)));
            break;
        }
    }

    /**
     * Encode one fiber from sorted reshaped nonzero points sharing a
     * coordinate prefix above @p level.
     */
    void
    walk(const std::vector<Point> &pts, std::size_t begin,
         std::size_t end, int level)
    {
        const RankFormat &rf = format.ranks()[level];
        std::int64_t shape = rank_shapes[level];
        const bool leaf = level + 1 == rankCount();

        // Group by the coordinate at this level.
        std::vector<std::pair<std::size_t, std::size_t>> groups;
        std::vector<std::int64_t> coords;
        std::size_t i = begin;
        while (i < end) {
            std::int64_t c = pts[i][level];
            std::size_t j = i;
            while (j < end && pts[j][level] == c) {
                ++j;
            }
            groups.emplace_back(i, j);
            coords.push_back(c);
            i = j;
        }
        auto occ = static_cast<std::int64_t>(groups.size());

        switch (rf.kind) {
          case RankFormatKind::U:
          case RankFormatKind::UB: {
            if (rf.kind == RankFormatKind::UB) {
                out.per_rank_metadata_bits[level] += shape;
            }
            if (leaf) {
                out.data_words += shape;  // dense payload row
            } else {
                // All coordinates materialize a child fiber.
                std::size_t g = 0;
                for (std::int64_t c = 0; c < shape; ++c) {
                    if (g < groups.size() && coords[g] == c) {
                        walk(pts, groups[g].first, groups[g].second,
                             level + 1);
                        ++g;
                    } else {
                        addEmptyFiber(level + 1);
                    }
                }
            }
            return;
          }
          case RankFormatKind::B:
            out.per_rank_metadata_bits[level] += shape;
            break;
          case RankFormatKind::CP:
            out.per_rank_metadata_bits[level] +=
                occ * rf.metadataBits(shape);
            break;
          case RankFormatKind::RLE: {
            int bits = rf.metadataBits(shape);
            std::int64_t max_run = (1LL << bits) - 1;
            std::int64_t entries = 0;
            std::int64_t prev = -1;
            for (auto c : coords) {
                std::int64_t gap = c - prev - 1;
                // Runs longer than the encodable maximum insert
                // explicit zero-payload entries.
                std::int64_t pads = gap / (max_run + 1);
                entries += pads + 1;
                if (leaf) {
                    out.data_words += pads;  // padding zeros stored
                }
                prev = c;
            }
            out.per_rank_metadata_bits[level] += entries * bits;
            break;
          }
          case RankFormatKind::UOP:
            out.per_rank_metadata_bits[level] +=
                static_cast<std::int64_t>(shape + 1) *
                (rf.explicit_bits > 0
                     ? rf.explicit_bits
                     : std::max(1, math::ceilLog2(
                           shape * elems_below[level] + 1)));
            break;
        }

        // Compressed ranks: only non-empty coordinates continue.
        for (const auto &[b, e] : groups) {
            if (leaf) {
                out.data_words += 1;
            } else {
                walk(pts, b, e, level + 1);
            }
        }
    }
};

} // namespace

EncodedTensor
encodeTensor(const SparseTensor &tensor, const TensorFormat &format)
{
    SL_ASSERT(format.rankCount() >= 1, "format without ranks");
    const int fr = static_cast<int>(format.rankCount());
    const int tr = static_cast<int>(tensor.rankCount());

    // Adapt tensor rank extents to the format's ranks.
    std::vector<std::int64_t> tensor_shape(tensor.shape().begin(),
                                           tensor.shape().end());
    auto rank_shapes = format.flattenExtents(tensor_shape);

    // Reshape nonzero coordinates to the format ranks: pad outer
    // coordinates with 0, flatten extra inner ranks row-major.
    std::vector<Point> pts;
    for (const auto &p : tensor.sortedNonzeroPoints()) {
        Point q(fr, 0);
        if (tr <= fr) {
            for (int r = 0; r < tr; ++r) {
                q[fr - tr + r] = p[r];
            }
        } else {
            for (int r = 0; r + 1 < fr; ++r) {
                q[r] = p[r];
            }
            std::int64_t flat = 0;
            for (int r = fr - 1; r < tr; ++r) {
                flat = flat * tensor.shape()[r] + p[r];
            }
            q[fr - 1] = flat;
        }
        pts.push_back(std::move(q));
    }
    std::sort(pts.begin(), pts.end());

    Encoder enc{format, rank_shapes, {}, {}};
    enc.elems_below.resize(fr, 1);
    for (int r = fr - 2; r >= 0; --r) {
        enc.elems_below[r] = enc.elems_below[r + 1] * rank_shapes[r + 1];
    }
    enc.out.per_rank_metadata_bits.assign(fr, 0);
    if (pts.empty()) {
        enc.addEmptyFiber(0);
    } else {
        enc.walk(pts, 0, pts.size(), 0);
    }
    return enc.out;
}

} // namespace sparseloop
