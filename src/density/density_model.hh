/**
 * @file
 * Statistical density models (Sec. 5.3.2, Table 4).
 *
 * A density model characterizes where the nonzeros of a workload tensor
 * sit, and answers the questions the sparse modeling step needs about
 * tiles (fibers) of a given shape:
 *   - expected occupancy (how many nonzeros a tile holds on average),
 *   - probability that the tile is entirely empty (drives intersection
 *     based gating/skipping savings),
 *   - worst-case occupancy (drives capacity/mapping validity), and
 *   - the full occupancy distribution (Fig. 9 style analysis).
 *
 * Models are either coordinate-independent (uniform, fixed-structured)
 * or coordinate-dependent (banded, actual data); the shaped interface
 * lets coordinate-dependent models average over tile positions.
 */

#ifndef SPARSELOOP_DENSITY_DENSITY_MODEL_HH
#define SPARSELOOP_DENSITY_DENSITY_MODEL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "tensor/point.hh"

namespace sparseloop {

/** Discrete distribution over tile occupancies. */
struct OccupancyDistribution
{
    /** occupancy -> probability; omitted entries have probability 0. */
    std::map<std::int64_t, double> pmf;

    double probOf(std::int64_t occ) const
    {
        auto it = pmf.find(occ);
        return it == pmf.end() ? 0.0 : it->second;
    }
    double probEmpty() const { return probOf(0); }
    double mean() const;
    std::int64_t max() const;
    /** Sum of all probabilities (should be ~1). */
    double totalMass() const;
};

/**
 * Abstract statistical density model for one tensor.
 */
class DensityModel
{
  public:
    virtual ~DensityModel() = default;

    /** Human-readable model name. */
    virtual std::string name() const = 0;

    /** Overall tensor density (fraction of nonzeros). */
    virtual double tensorDensity() const = 0;

    /** Expected nonzero count in a tile of @p tile_elems elements. */
    virtual double expectedOccupancy(std::int64_t tile_elems) const = 0;

    /** Probability that a tile of @p tile_elems elements is all-zero. */
    virtual double probEmpty(std::int64_t tile_elems) const = 0;

    /** Worst-case nonzero count in a tile of @p tile_elems elements. */
    virtual std::int64_t maxOccupancy(std::int64_t tile_elems) const = 0;

    /**
     * Full occupancy distribution for a tile of @p tile_elems elements.
     * The default builds a two-point {0, E[occ | nonempty]} surrogate;
     * concrete models override with the exact law.
     */
    virtual OccupancyDistribution
    distribution(std::int64_t tile_elems) const;

    /**
     * Shaped variants for coordinate-dependent models; defaults defer
     * to the element-count interface using the tile volume.
     */
    virtual double expectedOccupancyShaped(const Shape &extents) const;
    virtual double probEmptyShaped(const Shape &extents) const;
    virtual std::int64_t maxOccupancyShaped(const Shape &extents) const;

    /** Whether fiber density depends on fiber coordinates (Table 4). */
    virtual bool coordinateDependent() const { return false; }

    /**
     * Stable in-process identity for evaluation caching: two models with
     * equal signatures must answer every query identically. Concrete
     * models override this with a hash of their defining parameters so
     * that separately-constructed but semantically identical models
     * share cache entries; the base default conservatively mixes in a
     * process-unique instance id (never an address, which allocators
     * recycle), so an un-overridden model is only equal to itself.
     */
    virtual std::uint64_t signature() const;

  protected:
    /** Process-unique id minted per constructed model (see signature). */
    std::uint64_t instanceId() const { return instance_id_; }

  private:
    std::uint64_t instance_id_ = nextInstanceId();

    static std::uint64_t nextInstanceId();
};

using DensityModelPtr = std::shared_ptr<const DensityModel>;

} // namespace sparseloop

#endif // SPARSELOOP_DENSITY_DENSITY_MODEL_HH
