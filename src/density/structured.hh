/**
 * @file
 * The fixed-structured density model (Table 4): every aligned block of
 * m consecutive elements along a rank contains exactly n nonzeros
 * (the 2:4 pattern of structurally pruned DNNs / NVIDIA STC). The
 * structure makes per-tile behavior deterministic for tiles that are
 * multiples of the block, which is why the STC validation in Sec. 6.3.5
 * reaches 100% accuracy.
 */

#ifndef SPARSELOOP_DENSITY_STRUCTURED_HH
#define SPARSELOOP_DENSITY_STRUCTURED_HH

#include "density/density_model.hh"

namespace sparseloop {

class FixedStructuredDensity : public DensityModel
{
  public:
    /**
     * @param n nonzeros per block.
     * @param m block size (n <= m).
     */
    FixedStructuredDensity(std::int64_t n, std::int64_t m);

    std::string name() const override { return "fixed-structured"; }
    double tensorDensity() const override;
    double expectedOccupancy(std::int64_t tile_elems) const override;
    double probEmpty(std::int64_t tile_elems) const override;
    std::int64_t maxOccupancy(std::int64_t tile_elems) const override;
    OccupancyDistribution
    distribution(std::int64_t tile_elems) const override;

    std::int64_t n() const { return n_; }
    std::int64_t m() const { return m_; }

    /** Identity is the (n, m) block pattern. */
    std::uint64_t signature() const override;

  private:
    std::int64_t n_;
    std::int64_t m_;
};

/** Convenience factory for an n:m structured model. */
DensityModelPtr makeStructuredDensity(std::int64_t n, std::int64_t m);

} // namespace sparseloop

#endif // SPARSELOOP_DENSITY_STRUCTURED_HH
