/**
 * @file
 * The banded density model (Table 4): nonzeros concentrate around the
 * diagonal of a 2D matrix, which makes fiber density a function of its
 * coordinates (coordinate-dependent modeling). Representative of
 * SuiteSparse matrices and stencil-based scientific simulations.
 */

#ifndef SPARSELOOP_DENSITY_BANDED_HH
#define SPARSELOOP_DENSITY_BANDED_HH

#include "density/density_model.hh"

namespace sparseloop {

class BandedDensity : public DensityModel
{
  public:
    /**
     * @param rows, cols matrix shape.
     * @param half_bandwidth band half-width; (i, j) can be nonzero iff
     *        |i - j| <= half_bandwidth.
     * @param in_band_density density of nonzeros inside the band.
     */
    BandedDensity(std::int64_t rows, std::int64_t cols,
                  std::int64_t half_bandwidth, double in_band_density);

    std::string name() const override { return "banded"; }
    double tensorDensity() const override;
    double expectedOccupancy(std::int64_t tile_elems) const override;
    double probEmpty(std::int64_t tile_elems) const override;
    std::int64_t maxOccupancy(std::int64_t tile_elems) const override;
    bool coordinateDependent() const override { return true; }

    /** Shaped queries average over all aligned tile positions. */
    double expectedOccupancyShaped(const Shape &extents) const override;
    double probEmptyShaped(const Shape &extents) const override;
    std::int64_t maxOccupancyShaped(const Shape &extents) const override;

    /** Band elements inside the tile at @p origin with @p extents. */
    std::int64_t bandElementsInTile(const Point &origin,
                                    const Shape &extents) const;

    /** Identity is (shape, half-bandwidth, in-band density). */
    std::uint64_t signature() const override;

  private:
    std::int64_t rows_;
    std::int64_t cols_;
    std::int64_t half_bandwidth_;
    double in_band_density_;
    std::int64_t band_elems_;

    /** Derive a square-ish tile shape from an element count. */
    Shape defaultTileShape(std::int64_t tile_elems) const;
};

DensityModelPtr makeBandedDensity(std::int64_t rows, std::int64_t cols,
                                  std::int64_t half_bandwidth,
                                  double in_band_density = 1.0);

} // namespace sparseloop

#endif // SPARSELOOP_DENSITY_BANDED_HH
