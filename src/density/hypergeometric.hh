/**
 * @file
 * The uniform density model (Table 4): nonzeros are distributed
 * uniformly at random across the tensor, so the occupancy of a tile of
 * s elements follows a hypergeometric law Hypergeometric(N, K, s) with
 * N the tensor volume and K its nonzero count. This is the workhorse
 * model for randomly pruned DNNs and activation sparsity.
 */

#ifndef SPARSELOOP_DENSITY_HYPERGEOMETRIC_HH
#define SPARSELOOP_DENSITY_HYPERGEOMETRIC_HH

#include "density/density_model.hh"

namespace sparseloop {

class HypergeometricDensity : public DensityModel
{
  public:
    /**
     * @param tensor_elems total number of elements N in the tensor.
     * @param density fraction of nonzeros (K = round(density * N)).
     */
    HypergeometricDensity(std::int64_t tensor_elems, double density);

    std::string name() const override { return "hypergeometric"; }
    double tensorDensity() const override;
    double expectedOccupancy(std::int64_t tile_elems) const override;
    double probEmpty(std::int64_t tile_elems) const override;
    std::int64_t maxOccupancy(std::int64_t tile_elems) const override;
    OccupancyDistribution
    distribution(std::int64_t tile_elems) const override;

    std::int64_t tensorElements() const { return tensor_elems_; }
    std::int64_t nonzeroCount() const { return nonzeros_; }

    /** Identity is (N, K): any equal-parameter model behaves equally. */
    std::uint64_t signature() const override;

  private:
    std::int64_t tensor_elems_;
    std::int64_t nonzeros_;
};

/** Convenience factory. */
DensityModelPtr makeUniformDensity(std::int64_t tensor_elems,
                                   double density);

} // namespace sparseloop

#endif // SPARSELOOP_DENSITY_HYPERGEOMETRIC_HH
