/**
 * @file
 * Fixed-structured (n:m) density model implementation.
 */

#include "density/structured.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

FixedStructuredDensity::FixedStructuredDensity(std::int64_t n,
                                               std::int64_t m)
    : n_(n), m_(m)
{
    if (m_ < 1 || n_ < 0 || n_ > m_) {
        SL_FATAL("invalid n:m structure ", n, ":", m);
    }
}

double
FixedStructuredDensity::tensorDensity() const
{
    return static_cast<double>(n_) / static_cast<double>(m_);
}

double
FixedStructuredDensity::expectedOccupancy(std::int64_t tile_elems) const
{
    // Whole blocks are deterministic; a partial block behaves like a
    // without-replacement draw from one block.
    std::int64_t whole = tile_elems / m_;
    std::int64_t rem = tile_elems % m_;
    double occ = static_cast<double>(whole * n_);
    occ += math::hypergeometricMean(m_, n_, rem);
    return occ;
}

double
FixedStructuredDensity::probEmpty(std::int64_t tile_elems) const
{
    if (n_ == 0) {
        return 1.0;
    }
    if (tile_elems <= 0) {
        return 1.0;
    }
    if (tile_elems >= m_) {
        // Contains (at least one) whole block, which holds n nonzeros.
        return 0.0;
    }
    return math::hypergeometricProbEmpty(m_, n_, tile_elems);
}

std::int64_t
FixedStructuredDensity::maxOccupancy(std::int64_t tile_elems) const
{
    std::int64_t whole = tile_elems / m_;
    std::int64_t rem = tile_elems % m_;
    return whole * n_ + std::min(rem, n_);
}

OccupancyDistribution
FixedStructuredDensity::distribution(std::int64_t tile_elems) const
{
    OccupancyDistribution dist;
    std::int64_t whole = tile_elems / m_;
    std::int64_t rem = tile_elems % m_;
    std::int64_t base = whole * n_;
    if (rem == 0) {
        dist.pmf[base] = 1.0;
        return dist;
    }
    std::int64_t hi = std::min(rem, n_);
    for (std::int64_t k = 0; k <= hi; ++k) {
        double p = math::hypergeometricPmf(m_, n_, rem, k);
        if (p > 0.0) {
            dist.pmf[base + k] += p;
        }
    }
    return dist;
}

DensityModelPtr
makeStructuredDensity(std::int64_t n, std::int64_t m)
{
    return std::make_shared<FixedStructuredDensity>(n, m);
}


std::uint64_t
FixedStructuredDensity::signature() const
{
    std::uint64_t h = math::hashString(math::kHashSeed, name());
    h = math::hashCombine(h, static_cast<std::uint64_t>(n_));
    return math::hashCombine(h, static_cast<std::uint64_t>(m_));
}

} // namespace sparseloop
