/**
 * @file
 * Hypergeometric (uniform) density model implementation.
 */

#include "density/hypergeometric.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

HypergeometricDensity::HypergeometricDensity(std::int64_t tensor_elems,
                                             double density)
    : tensor_elems_(tensor_elems)
{
    SL_ASSERT(tensor_elems_ >= 1, "empty tensor");
    if (density < 0.0 || density > 1.0) {
        SL_FATAL("density must be within [0, 1], got ", density);
    }
    nonzeros_ = std::min<std::int64_t>(
        tensor_elems_,
        static_cast<std::int64_t>(
            std::llround(density * static_cast<double>(tensor_elems_))));
}

double
HypergeometricDensity::tensorDensity() const
{
    return static_cast<double>(nonzeros_) /
           static_cast<double>(tensor_elems_);
}

double
HypergeometricDensity::expectedOccupancy(std::int64_t tile_elems) const
{
    tile_elems = std::min(tile_elems, tensor_elems_);
    return math::hypergeometricMean(tensor_elems_, nonzeros_, tile_elems);
}

double
HypergeometricDensity::probEmpty(std::int64_t tile_elems) const
{
    tile_elems = std::min(tile_elems, tensor_elems_);
    return math::hypergeometricProbEmpty(tensor_elems_, nonzeros_,
                                         tile_elems);
}

std::int64_t
HypergeometricDensity::maxOccupancy(std::int64_t tile_elems) const
{
    tile_elems = std::min(tile_elems, tensor_elems_);
    return math::hypergeometricMax(tensor_elems_, nonzeros_, tile_elems);
}

OccupancyDistribution
HypergeometricDensity::distribution(std::int64_t tile_elems) const
{
    tile_elems = std::min(tile_elems, tensor_elems_);
    OccupancyDistribution dist;
    std::int64_t lo = std::max<std::int64_t>(
        0, tile_elems - (tensor_elems_ - nonzeros_));
    std::int64_t hi = math::hypergeometricMax(tensor_elems_, nonzeros_,
                                              tile_elems);
    for (std::int64_t k = lo; k <= hi; ++k) {
        double p = math::hypergeometricPmf(tensor_elems_, nonzeros_,
                                           tile_elems, k);
        if (p > 0.0) {
            dist.pmf[k] = p;
        }
    }
    return dist;
}

DensityModelPtr
makeUniformDensity(std::int64_t tensor_elems, double density)
{
    return std::make_shared<HypergeometricDensity>(tensor_elems, density);
}


std::uint64_t
HypergeometricDensity::signature() const
{
    std::uint64_t h = math::hashString(math::kHashSeed, name());
    h = math::hashCombine(h, static_cast<std::uint64_t>(tensor_elems_));
    return math::hashCombine(h, static_cast<std::uint64_t>(nonzeros_));
}

} // namespace sparseloop
