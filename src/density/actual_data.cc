/**
 * @file
 * Actual-data density model implementation.
 */

#include "density/actual_data.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

ActualDataDensity::ActualDataDensity(
        std::shared_ptr<const SparseTensor> data)
    : data_(std::move(data))
{
    SL_ASSERT(data_ != nullptr, "null tensor");
}

double
ActualDataDensity::tensorDensity() const
{
    return data_->density();
}

Shape
ActualDataDensity::defaultTileShape(std::int64_t tile_elems) const
{
    // Fill ranks innermost-first (row-major contiguity).
    const Shape &full = data_->shape();
    Shape tile(full.size(), 1);
    std::int64_t remaining = std::max<std::int64_t>(1, tile_elems);
    for (std::size_t r = full.size(); r-- > 0 && remaining > 1;) {
        std::int64_t take = std::min(remaining, full[r]);
        tile[r] = take;
        remaining = (remaining + take - 1) / take;
    }
    return tile;
}

OccupancyDistribution
ActualDataDensity::distributionShaped(const Shape &extents) const
{
    const Shape &full = data_->shape();
    SL_ASSERT(extents.size() == full.size(), "tile rank mismatch");
    // Number of aligned tiles along each rank.
    Shape tiles(full.size());
    std::int64_t total_tiles = 1;
    for (std::size_t r = 0; r < full.size(); ++r) {
        std::int64_t e = std::max<std::int64_t>(1, extents[r]);
        tiles[r] = (full[r] + e - 1) / e;
        total_tiles *= tiles[r];
    }
    // One pass over nonzeros: bucket each into its tile.
    std::unordered_map<std::int64_t, std::int64_t> occ_per_tile;
    for (const auto &p : data_->sortedNonzeroPoints()) {
        std::int64_t tile_idx = 0;
        for (std::size_t r = 0; r < full.size(); ++r) {
            std::int64_t e = std::max<std::int64_t>(1, extents[r]);
            tile_idx = tile_idx * tiles[r] + p[r] / e;
        }
        occ_per_tile[tile_idx] += 1;
    }
    OccupancyDistribution dist;
    auto nonempty = static_cast<std::int64_t>(occ_per_tile.size());
    if (total_tiles > nonempty) {
        dist.pmf[0] = static_cast<double>(total_tiles - nonempty) /
                      static_cast<double>(total_tiles);
    }
    for (const auto &kv : occ_per_tile) {
        dist.pmf[kv.second] += 1.0 / static_cast<double>(total_tiles);
    }
    return dist;
}

double
ActualDataDensity::expectedOccupancyShaped(const Shape &extents) const
{
    return distributionShaped(extents).mean();
}

double
ActualDataDensity::probEmptyShaped(const Shape &extents) const
{
    return distributionShaped(extents).probEmpty();
}

std::int64_t
ActualDataDensity::maxOccupancyShaped(const Shape &extents) const
{
    return distributionShaped(extents).max();
}

double
ActualDataDensity::expectedOccupancy(std::int64_t tile_elems) const
{
    return expectedOccupancyShaped(defaultTileShape(tile_elems));
}

double
ActualDataDensity::probEmpty(std::int64_t tile_elems) const
{
    return probEmptyShaped(defaultTileShape(tile_elems));
}

std::int64_t
ActualDataDensity::maxOccupancy(std::int64_t tile_elems) const
{
    return maxOccupancyShaped(defaultTileShape(tile_elems));
}

OccupancyDistribution
ActualDataDensity::distribution(std::int64_t tile_elems) const
{
    return distributionShaped(defaultTileShape(tile_elems));
}

DensityModelPtr
makeActualDataDensity(std::shared_ptr<const SparseTensor> data)
{
    return std::make_shared<ActualDataDensity>(std::move(data));
}


std::uint64_t
ActualDataDensity::signature() const
{
    std::uint64_t h = math::hashString(math::kHashSeed, name());
    return math::hashCombine(h, instanceId());
}

} // namespace sparseloop
