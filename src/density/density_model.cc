/**
 * @file
 * Shared behavior for density models.
 */

#include "density/density_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/mathutil.hh"

namespace sparseloop {

double
OccupancyDistribution::mean() const
{
    double m = 0.0;
    for (const auto &kv : pmf) {
        m += static_cast<double>(kv.first) * kv.second;
    }
    return m;
}

std::int64_t
OccupancyDistribution::max() const
{
    for (auto it = pmf.rbegin(); it != pmf.rend(); ++it) {
        if (it->second > 0.0) {
            return it->first;
        }
    }
    return 0;
}

double
OccupancyDistribution::totalMass() const
{
    double m = 0.0;
    for (const auto &kv : pmf) {
        m += kv.second;
    }
    return m;
}

OccupancyDistribution
DensityModel::distribution(std::int64_t tile_elems) const
{
    OccupancyDistribution dist;
    double p_empty = probEmpty(tile_elems);
    double mean = expectedOccupancy(tile_elems);
    if (p_empty >= 1.0 || mean <= 0.0) {
        dist.pmf[0] = 1.0;
        return dist;
    }
    // Two-point surrogate: empty with p_empty, otherwise the expected
    // occupancy conditioned on being non-empty.
    double cond_mean = mean / (1.0 - p_empty);
    auto occ = static_cast<std::int64_t>(std::llround(cond_mean));
    occ = std::max<std::int64_t>(1, std::min(occ, tile_elems));
    if (p_empty > 0.0) {
        dist.pmf[0] = p_empty;
    }
    dist.pmf[occ] += 1.0 - p_empty;
    return dist;
}

double
DensityModel::expectedOccupancyShaped(const Shape &extents) const
{
    return expectedOccupancy(volume(extents));
}

double
DensityModel::probEmptyShaped(const Shape &extents) const
{
    return probEmpty(volume(extents));
}

std::int64_t
DensityModel::maxOccupancyShaped(const Shape &extents) const
{
    return maxOccupancy(volume(extents));
}

std::uint64_t
DensityModel::nextInstanceId()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
DensityModel::signature() const
{
    // Conservative default: models that don't describe their parameters
    // are only ever equal to themselves.
    std::uint64_t h = math::hashString(math::kHashSeed, name());
    h = math::hashDouble(h, tensorDensity());
    return math::hashCombine(h, instance_id_);
}

} // namespace sparseloop
