/**
 * @file
 * The actual-data density model (Table 4): tile statistics are computed
 * exactly from a concrete sparse tensor instead of a statistical law.
 * Slower, but exact — this is the model the paper uses to close the gap
 * on Eyeriss V2 PE validation (Sec. 6.3.2).
 */

#ifndef SPARSELOOP_DENSITY_ACTUAL_DATA_HH
#define SPARSELOOP_DENSITY_ACTUAL_DATA_HH

#include <memory>

#include "density/density_model.hh"
#include "tensor/sparse_tensor.hh"

namespace sparseloop {

class ActualDataDensity : public DensityModel
{
  public:
    explicit ActualDataDensity(std::shared_ptr<const SparseTensor> data);

    std::string name() const override { return "actual-data"; }
    double tensorDensity() const override;
    double expectedOccupancy(std::int64_t tile_elems) const override;
    double probEmpty(std::int64_t tile_elems) const override;
    std::int64_t maxOccupancy(std::int64_t tile_elems) const override;
    OccupancyDistribution
    distribution(std::int64_t tile_elems) const override;
    bool coordinateDependent() const override { return true; }

    double expectedOccupancyShaped(const Shape &extents) const override;
    double probEmptyShaped(const Shape &extents) const override;
    std::int64_t maxOccupancyShaped(const Shape &extents) const override;

    /** Exact occupancy distribution over aligned tiles of a shape. */
    OccupancyDistribution
    distributionShaped(const Shape &extents) const;

    const SparseTensor &data() const { return *data_; }

    /**
     * Identity is this model instance (via the base instance id):
     * actual-data results are never shared between separately
     * constructed models, even over the same tensor. A recycled heap
     * address must not alias a dead model's cache entries, so the
     * identity is a minted id, not the data pointer.
     */
    std::uint64_t signature() const override;

  private:
    std::shared_ptr<const SparseTensor> data_;

    Shape defaultTileShape(std::int64_t tile_elems) const;
};

DensityModelPtr
makeActualDataDensity(std::shared_ptr<const SparseTensor> data);

} // namespace sparseloop

#endif // SPARSELOOP_DENSITY_ACTUAL_DATA_HH
