/**
 * @file
 * Banded density model implementation.
 */

#include "density/banded.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

BandedDensity::BandedDensity(std::int64_t rows, std::int64_t cols,
                             std::int64_t half_bandwidth,
                             double in_band_density)
    : rows_(rows), cols_(cols), half_bandwidth_(half_bandwidth),
      in_band_density_(in_band_density)
{
    if (rows_ < 1 || cols_ < 1 || half_bandwidth_ < 0) {
        SL_FATAL("invalid banded model parameters");
    }
    if (in_band_density_ < 0.0 || in_band_density_ > 1.0) {
        SL_FATAL("in-band density out of range: ", in_band_density_);
    }
    band_elems_ = 0;
    for (std::int64_t i = 0; i < rows_; ++i) {
        std::int64_t lo = std::max<std::int64_t>(0, i - half_bandwidth_);
        std::int64_t hi = std::min(cols_ - 1, i + half_bandwidth_);
        if (hi >= lo) {
            band_elems_ += hi - lo + 1;
        }
    }
}

double
BandedDensity::tensorDensity() const
{
    return in_band_density_ * static_cast<double>(band_elems_) /
           static_cast<double>(rows_ * cols_);
}

std::int64_t
BandedDensity::bandElementsInTile(const Point &origin,
                                  const Shape &extents) const
{
    std::int64_t r0 = origin[0];
    std::int64_t c0 = origin[1];
    std::int64_t r1 = std::min(rows_, r0 + extents[0]);
    std::int64_t c1 = std::min(cols_, c0 + extents[1]);
    std::int64_t count = 0;
    for (std::int64_t i = std::max<std::int64_t>(0, r0); i < r1; ++i) {
        std::int64_t lo = std::max(c0, i - half_bandwidth_);
        std::int64_t hi = std::min(c1 - 1, i + half_bandwidth_);
        if (hi >= lo) {
            count += hi - lo + 1;
        }
    }
    return count;
}

Shape
BandedDensity::defaultTileShape(std::int64_t tile_elems) const
{
    // Pick a roughly square tile no larger than the matrix itself.
    auto side = static_cast<std::int64_t>(
        std::llround(std::sqrt(static_cast<double>(tile_elems))));
    side = std::max<std::int64_t>(1, side);
    std::int64_t r = std::min(rows_, side);
    std::int64_t c = std::min(cols_, std::max<std::int64_t>(
        1, tile_elems / std::max<std::int64_t>(1, r)));
    return {r, c};
}

double
BandedDensity::expectedOccupancyShaped(const Shape &extents) const
{
    // Average band coverage over all aligned tile positions.
    std::int64_t tiles_r = std::max<std::int64_t>(
        1, (rows_ + extents[0] - 1) / extents[0]);
    std::int64_t tiles_c = std::max<std::int64_t>(
        1, (cols_ + extents[1] - 1) / extents[1]);
    double total = 0.0;
    for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
        for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
            total += static_cast<double>(bandElementsInTile(
                {tr * extents[0], tc * extents[1]}, extents));
        }
    }
    return in_band_density_ * total /
           static_cast<double>(tiles_r * tiles_c);
}

double
BandedDensity::probEmptyShaped(const Shape &extents) const
{
    // Fraction of aligned tile positions that never touch the band;
    // in-band thinning adds a small correction for touched tiles.
    std::int64_t tiles_r = std::max<std::int64_t>(
        1, (rows_ + extents[0] - 1) / extents[0]);
    std::int64_t tiles_c = std::max<std::int64_t>(
        1, (cols_ + extents[1] - 1) / extents[1]);
    double empty = 0.0;
    for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
        for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
            std::int64_t in_band = bandElementsInTile(
                {tr * extents[0], tc * extents[1]}, extents);
            if (in_band == 0) {
                empty += 1.0;
            } else if (in_band_density_ < 1.0) {
                empty += std::pow(1.0 - in_band_density_,
                                  static_cast<double>(in_band));
            }
        }
    }
    return empty / static_cast<double>(tiles_r * tiles_c);
}

std::int64_t
BandedDensity::maxOccupancyShaped(const Shape &extents) const
{
    std::int64_t tiles_r = std::max<std::int64_t>(
        1, (rows_ + extents[0] - 1) / extents[0]);
    std::int64_t tiles_c = std::max<std::int64_t>(
        1, (cols_ + extents[1] - 1) / extents[1]);
    std::int64_t max_occ = 0;
    for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
        for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
            max_occ = std::max(max_occ, bandElementsInTile(
                {tr * extents[0], tc * extents[1]}, extents));
        }
    }
    return max_occ;
}

double
BandedDensity::expectedOccupancy(std::int64_t tile_elems) const
{
    return expectedOccupancyShaped(defaultTileShape(tile_elems));
}

double
BandedDensity::probEmpty(std::int64_t tile_elems) const
{
    return probEmptyShaped(defaultTileShape(tile_elems));
}

std::int64_t
BandedDensity::maxOccupancy(std::int64_t tile_elems) const
{
    return maxOccupancyShaped(defaultTileShape(tile_elems));
}

DensityModelPtr
makeBandedDensity(std::int64_t rows, std::int64_t cols,
                  std::int64_t half_bandwidth, double in_band_density)
{
    return std::make_shared<BandedDensity>(rows, cols, half_bandwidth,
                                           in_band_density);
}


std::uint64_t
BandedDensity::signature() const
{
    std::uint64_t h = math::hashString(math::kHashSeed, name());
    h = math::hashCombine(h, static_cast<std::uint64_t>(rows_));
    h = math::hashCombine(h, static_cast<std::uint64_t>(cols_));
    h = math::hashCombine(h, static_cast<std::uint64_t>(half_bandwidth_));
    return math::hashDouble(h, in_band_density_);
}

} // namespace sparseloop
