/**
 * @file
 * Step one of Sparseloop's modeling pipeline (Sec. 5.2): dataflow
 * modeling. Derives the uncompressed data movement ("dense traffic")
 * and dense compute count implied by a mapping, independent of any
 * sparse acceleration feature.
 *
 * Modeling rules (Timeloop-style):
 *  - The tile of tensor t resident at storage level l covers the loops
 *    of subnests l..innermost (coordinate-space tiling, Fig. 7a).
 *  - The number of times that tile is re-delivered from above follows
 *    the temporal-reuse rule: scanning the loops above l from the
 *    innermost outward, leading loops irrelevant to t provide reuse;
 *    from the first relevant loop outward every loop's bound multiplies
 *    the delivery count.
 *  - Spatial loops multiply instance counts; spatial loops irrelevant
 *    to a tensor multicast the same data to several instances, so the
 *    parent is read once per multicast group.
 *  - Outputs move upward: each tile residency drains to the parent;
 *    repeated updates of the same element cost read-modify-write
 *    accesses except for the first write of each residency. Spatial
 *    loops over reduction dimensions are reduced in the network before
 *    reaching the parent.
 *  - Bypassed tensors (keep mask false) exchange data directly between
 *    the nearest enclosing keeping levels.
 */

#ifndef SPARSELOOP_DATAFLOW_DENSE_TRAFFIC_HH
#define SPARSELOOP_DATAFLOW_DENSE_TRAFFIC_HH

#include <vector>

#include "arch/architecture.hh"
#include "common/flat_matrix.hh"
#include "common/small_vector.hh"
#include "mapping/mapping.hh"
#include "workload/workload.hh"

namespace sparseloop {

/** Dense per-tensor traffic at one storage level (totals, elements). */
struct TensorLevelDense
{
    /** Whether the tensor is buffered at this level. */
    bool kept = false;
    /** Per-instance tile footprint in elements. */
    double footprint = 0.0;
    /** Tile extents per tensor rank at this level. */
    TileExtents tile_extents;
    /** Element-writes into this level from the parent (operands). */
    double fills = 0.0;
    /** Element-reads out of this level serving children / compute. */
    double reads = 0.0;
    /** Output element-writes into this level from below. */
    double updates = 0.0;
    /** Output read-modify-write reads at this level. */
    double acc_reads = 0.0;
    /** Output element-reads leaving this level toward the parent. */
    double drains = 0.0;

    /** Exact (bitwise double) equality; feeds the cache's bit-identity
     *  contract — keep in sync with the field list above. */
    bool operator==(const TensorLevelDense &o) const
    {
        return kept == o.kept && footprint == o.footprint &&
               tile_extents == o.tile_extents && fills == o.fills &&
               reads == o.reads && updates == o.updates &&
               acc_reads == o.acc_reads && drains == o.drains;
    }
    bool operator!=(const TensorLevelDense &o) const
    {
        return !(*this == o);
    }
};

/** Result of the dataflow modeling step. */
struct DenseTraffic
{
    /** [level][tensor] traffic records (contiguous row-major grid). */
    FlatMatrix<TensorLevelDense> levels;
    /** Total dense compute count. */
    double computes = 0.0;
    /** Per-level instance counts. */
    std::vector<std::int64_t> instances;
    /** Total compute instances (product of all spatial bounds). */
    std::int64_t compute_instances = 1;

    const TensorLevelDense &at(int level, int tensor) const
    {
        return levels[level][tensor];
    }

    /** Exact equality over every record (bit-identity contract). */
    bool operator==(const DenseTraffic &o) const
    {
        return computes == o.computes && instances == o.instances &&
               compute_instances == o.compute_instances &&
               levels == o.levels;
    }
    bool operator!=(const DenseTraffic &o) const { return !(*this == o); }
};

/**
 * Dataflow analysis engine.
 */
class NestAnalysis
{
  public:
    NestAnalysis(const Workload &workload, const Architecture &arch,
                 const Mapping &mapping);

    /** Run the analysis (validates the mapping first). */
    DenseTraffic analyze() const;

    /**
     * Deliveries of tensor @p t across the boundary into level @p lvl
     * (elements): footprint x instances x temporal-reuse factor.
     * Level == levelCount() designates the virtual compute level.
     */
    double transferCount(int t, int lvl) const;

    /**
     * Multicast factor for tensor @p t across spatial loops in levels
     * [from, to): the number of instances receiving identical data.
     */
    double multicastFactor(int t, int from, int to) const;

    /** Innermost level at which tensor @p t is kept. Always valid:
     *  the backing store keeps everything, so the result is >= 0 even
     *  for all-bypass masks. */
    int innermostKeepLevel(int t) const;

    /** Keeping levels of tensor @p t, outermost first. Guaranteed
     *  non-empty with front() == 0 (the backing store always keeps) —
     *  asserted centrally here, so consumers (dense traffic, the
     *  sparse boundary search) may index .front()/.back() freely. */
    std::vector<int> keepLevels(int t) const;

  private:
    const Workload &workload_;
    const Architecture &arch_;
    const Mapping &mapping_;

    /** Temporal-reuse delivery multiplier over loops above @p lvl. */
    double temporalMultiplier(int t, int lvl) const;
};

} // namespace sparseloop

#endif // SPARSELOOP_DATAFLOW_DENSE_TRAFFIC_HH
