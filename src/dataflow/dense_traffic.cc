/**
 * @file
 * Dense traffic (dataflow modeling) implementation.
 */

#include "dataflow/dense_traffic.hh"

#include <algorithm>

#include "common/arena.hh"
#include "common/logging.hh"

namespace sparseloop {

NestAnalysis::NestAnalysis(const Workload &workload,
                           const Architecture &arch,
                           const Mapping &mapping)
    : workload_(workload), arch_(arch), mapping_(mapping)
{
}

double
NestAnalysis::temporalMultiplier(int t, int lvl) const
{
    // Concatenate the subnests above lvl and scan from the innermost
    // loop outward: leading irrelevant loops grant temporal reuse; the
    // first relevant loop and everything outside it multiply.
    double m = 1.0;
    bool seen_relevant = false;
    for (int l = std::min(lvl, mapping_.levelCount()); l-- > 0;) {
        const auto &loops = mapping_.level(l).loops;
        for (std::size_t i = loops.size(); i-- > 0;) {
            const Loop &loop = loops[i];
            // Bound-1 and spatial loops never advance the tile in
            // time: they are transparent to the reuse scan.
            if (loop.spatial || loop.bound == 1) {
                continue;
            }
            if (!seen_relevant &&
                !workload_.dimRelevant(t, loop.dim)) {
                continue;
            }
            seen_relevant = true;
            m *= static_cast<double>(loop.bound);
        }
    }
    return m;
}

double
NestAnalysis::transferCount(int t, int lvl) const
{
    double footprint;
    std::int64_t instances;
    if (lvl >= mapping_.levelCount()) {
        // Virtual compute level: one element per operand per MAC.
        footprint = 1.0;
        instances = mapping_.computeInstances();
        lvl = mapping_.levelCount();
    } else {
        auto tiles = mapping_.dimTilesAtLevel(workload_, lvl);
        footprint = static_cast<double>(
            volume(workload_.tensorTileExtents(t, tiles)));
        instances = mapping_.instancesAtLevel(lvl);
    }
    return footprint * static_cast<double>(instances) *
           temporalMultiplier(t, lvl);
}

double
NestAnalysis::multicastFactor(int t, int from, int to) const
{
    double mcast = 1.0;
    for (int l = from; l < to && l < mapping_.levelCount(); ++l) {
        for (const auto &loop : mapping_.level(l).loops) {
            if (loop.spatial && !workload_.dimRelevant(t, loop.dim)) {
                mcast *= static_cast<double>(loop.bound);
            }
        }
    }
    return mcast;
}

std::vector<int>
NestAnalysis::keepLevels(int t) const
{
    std::vector<int> ks;
    for (int l = 0; l < mapping_.levelCount(); ++l) {
        // The outermost level is the backing store and always keeps.
        if (l == 0 || mapping_.level(l).keeps(t)) {
            ks.push_back(l);
        }
    }
    // The invariant every consumer (dense traffic, sparse boundary
    // search, innermost-keep accounting) relies on, asserted here once
    // instead of per call site: the backing store always keeps, so the
    // list is never empty and always starts at level 0 — even for
    // all-bypass-below-backing-store masks.
    SL_ASSERT(!ks.empty() && ks.front() == 0,
              "keepLevels invariant violated for tensor ", t);
    return ks;
}

int
NestAnalysis::innermostKeepLevel(int t) const
{
    return keepLevels(t).back();
}

DenseTraffic
NestAnalysis::analyze() const
{
    mapping_.validate(workload_, arch_);

    const int S = mapping_.levelCount();
    const int T = workload_.tensorCount();
    const int D = workload_.dimCount();
    DenseTraffic out;
    out.levels.assign(S, T);
    out.instances.resize(S);

    ArenaScope scope(evalScratchArena());
    Arena &arena = scope.arena();

    // Dim-tile table: row l holds dimTilesAtLevel(l) for l in [0, S],
    // built by one suffix sweep instead of S independent rescans. The
    // products accumulate in a different order than dimTilesAtLevel's,
    // but integer multiplication is order-independent, so the values
    // (and everything derived from them) are identical.
    std::int64_t *tiles = arena.allocArray<std::int64_t>(
        static_cast<std::size_t>(S + 1) * D);
    for (int d = 0; d < D; ++d) {
        tiles[static_cast<std::size_t>(S) * D + d] = 1;
    }
    for (int l = S; l-- > 0;) {
        std::int64_t *row = tiles + static_cast<std::size_t>(l) * D;
        const std::int64_t *below =
            tiles + static_cast<std::size_t>(l + 1) * D;
        std::copy(below, below + D, row);
        for (const auto &loop : mapping_.level(l).loops) {
            row[loop.dim] *= loop.bound;
        }
    }

    // Instance counts: prefix products over spatial bounds, matching
    // instancesAtLevel level by level.
    {
        std::int64_t inst = 1;
        for (int l = 0; l < S; ++l) {
            out.instances[l] = inst;
            for (const auto &loop : mapping_.level(l).loops) {
                if (loop.spatial) {
                    inst *= loop.bound;
                }
            }
        }
        out.compute_instances = inst;
    }
    out.computes = static_cast<double>(workload_.denseComputeCount());

    for (int l = 0; l < S; ++l) {
        const std::int64_t *row =
            tiles + static_cast<std::size_t>(l) * D;
        TensorLevelDense *level = out.levels[l];
        for (int t = 0; t < T; ++t) {
            auto &rec = level[t];
            rec.kept = (l == 0) || mapping_.level(l).keeps(t);
            workload_.tensorTileExtentsInto(t, row, rec.tile_extents);
            rec.footprint =
                static_cast<double>(volume(rec.tile_extents));
        }
    }

    // transferCount with the footprint/instances lookups precomputed
    // above; the temporal multiplier is evaluated identically.
    auto transfer = [&](int t, int lvl) {
        double footprint;
        std::int64_t instances;
        if (lvl >= S) {
            footprint = 1.0;
            instances = out.compute_instances;
            lvl = S;
        } else {
            footprint = out.levels[lvl][t].footprint;
            instances = out.instances[lvl];
        }
        return footprint * static_cast<double>(instances) *
               temporalMultiplier(t, lvl);
    };

    SmallVector<int, 8> keeps;
    for (int t = 0; t < T; ++t) {
        const bool is_output = workload_.tensor(t).is_output;
        keeps.clear();
        for (int l = 0; l < S; ++l) {
            if (l == 0 || mapping_.level(l).keeps(t)) {
                keeps.push_back(l);
            }
        }
        SL_ASSERT(!keeps.empty() && keeps.front() == 0,
                  "keepLevels invariant violated for tensor ", t);
        // Traffic between consecutive keeping levels.
        for (std::size_t i = 0; i + 1 < keeps.size(); ++i) {
            int a = keeps[i];
            int b = keeps[i + 1];
            double x = transfer(t, b);
            double mcast = multicastFactor(t, a, b);
            if (is_output) {
                out.levels[b][t].drains += x;
                out.levels[a][t].updates += x / mcast;
            } else {
                out.levels[b][t].fills += x;
                out.levels[a][t].reads += x / mcast;
            }
        }
        // Boundary between the innermost keeping level and compute.
        int inner = keeps.back();
        double x = transfer(t, S);
        double mcast = multicastFactor(t, inner, S);
        if (is_output) {
            out.levels[inner][t].updates += x / mcast;
        } else {
            out.levels[inner][t].reads += x / mcast;
        }
        // Accumulation reads: every update beyond the first write of
        // an element residency is a read-modify-write.
        if (is_output) {
            for (int a : keeps) {
                auto &rec = out.levels[a][t];
                double residencies = transfer(t, a);
                rec.acc_reads =
                    std::max(0.0, rec.updates - residencies);
            }
        }
    }
    return out;
}

} // namespace sparseloop
