/**
 * @file
 * Accelergy-lite energy model implementation.
 *
 * Constants are public 45nm-class estimates in the spirit of the
 * numbers popularized by Horowitz (ISSCC'14) and used by Eyeriss /
 * Accelergy documentation:
 *   - DRAM access:  ~200 pJ per 16-bit word
 *   - SRAM access:  grows ~sqrt(capacity); ~6 pJ at 100 KiB / 16 bits
 *   - register file: ~0.12 pJ per 16-bit word at small sizes
 *   - 16-bit MAC:   ~2.2 pJ (1 pJ multiply + adder + control)
 */

#include "arch/energy_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sparseloop {

namespace {

constexpr double kDramEnergyPj16 = 200.0;
constexpr double kSramRefEnergyPj16 = 6.0;     // at 100 KiB, 16-bit word
constexpr double kSramRefCapacityBits = 100.0 * 1024.0 * 8.0;
constexpr double kRegFileEnergyPj16 = 0.12;
constexpr double kRegFileRefBits = 512.0 * 8.0; // scale above 512 B
constexpr double kMacEnergyPj16 = 2.2;

} // namespace

double
EnergyModel::referenceReadEnergy(const StorageLevelSpec &level)
{
    double width_scale = static_cast<double>(level.word_bits) / 16.0;
    switch (level.storage_class) {
      case StorageClass::DRAM:
        return kDramEnergyPj16 * width_scale;
      case StorageClass::SRAM: {
        double cap_bits = std::isinf(level.capacity_words)
            ? kSramRefCapacityBits
            : level.capacity_words * level.word_bits;
        double cap_scale =
            std::sqrt(std::max(1.0, cap_bits / kSramRefCapacityBits));
        // Small SRAMs approach register-file costs; floor the scale.
        cap_scale = std::max(cap_scale,
            std::sqrt(std::max(1e-3, cap_bits / kSramRefCapacityBits)));
        return kSramRefEnergyPj16 * cap_scale * width_scale;
      }
      case StorageClass::RegFile: {
        double cap_bits = std::isinf(level.capacity_words)
            ? kRegFileRefBits
            : level.capacity_words * level.word_bits;
        double cap_scale =
            std::max(1.0, std::sqrt(cap_bits / kRegFileRefBits));
        return kRegFileEnergyPj16 * cap_scale * width_scale;
      }
    }
    SL_PANIC("unknown storage class");
}

double
EnergyModel::referenceMacEnergy(int datapath_bits)
{
    double w = static_cast<double>(datapath_bits) / 16.0;
    // Multiplier energy grows ~quadratically with width, adder linearly;
    // use an intermediate exponent as a pragmatic blend.
    return kMacEnergyPj16 * std::pow(w, 1.5);
}

EnergyModel::EnergyModel(const Architecture &arch, double gated_fraction,
                         int metadata_bits_per_word)
    : gated_fraction_(gated_fraction),
      metadata_bits_per_word_(metadata_bits_per_word)
{
    if (gated_fraction_ < 0.0 || gated_fraction_ > 1.0) {
        SL_FATAL("gated fraction out of range: ", gated_fraction_);
    }
    for (int i = 0; i < arch.levelCount(); ++i) {
        const auto &l = arch.level(i);
        double read = l.read_energy_pj >= 0.0 ? l.read_energy_pj
                                              : referenceReadEnergy(l);
        double write = l.write_energy_pj >= 0.0 ? l.write_energy_pj
                                                : read * 1.1;
        read_pj_.push_back(read);
        write_pj_.push_back(write);
        word_bits_.push_back(l.word_bits);
    }
    mac_pj_ = arch.compute().mac_energy_pj >= 0.0
        ? arch.compute().mac_energy_pj
        : referenceMacEnergy(arch.compute().datapath_bits);
}

double
EnergyModel::storageEnergy(int level, ActionKind kind) const
{
    SL_ASSERT(level >= 0 &&
              level < static_cast<int>(read_pj_.size()),
              "level out of range");
    double meta_scale = static_cast<double>(metadata_bits_per_word_) /
                        static_cast<double>(word_bits_[level]);
    switch (kind) {
      case ActionKind::Read:
        return read_pj_[level];
      case ActionKind::Write:
        return write_pj_[level];
      case ActionKind::GatedRead:
        return read_pj_[level] * gated_fraction_;
      case ActionKind::GatedWrite:
        return write_pj_[level] * gated_fraction_;
      case ActionKind::MetadataRead:
        return read_pj_[level] * meta_scale;
      case ActionKind::MetadataWrite:
        return write_pj_[level] * meta_scale;
      case ActionKind::Skipped:
        return 0.0;
      default:
        SL_PANIC("compute action queried on storage level");
    }
}

double
EnergyModel::computeEnergy(ActionKind kind) const
{
    switch (kind) {
      case ActionKind::Compute:
        return mac_pj_;
      case ActionKind::GatedCompute:
        return mac_pj_ * gated_fraction_;
      case ActionKind::Skipped:
        return 0.0;
      default:
        SL_PANIC("storage action queried on compute level");
    }
}

} // namespace sparseloop
