/**
 * @file
 * Accelergy-lite: an architecture-level per-action energy estimator in
 * the spirit of Accelergy [Wu et al., ICCAD'19], which the paper uses
 * as its energy back end (Sec. 5.4). Energies are derived from public
 * 45nm-class constants; the paper's artifact makes the same
 * substitution for its proprietary node.
 *
 * Fine-grained action types follow Sec. 5.3.4: a dense access becomes
 * one of {actual, gated, skipped}; actual and gated accesses consume
 * energy (gated at a strongly reduced rate), skipped accesses are free.
 * Metadata accesses are scaled by the metadata/data width ratio.
 */

#ifndef SPARSELOOP_ARCH_ENERGY_MODEL_HH
#define SPARSELOOP_ARCH_ENERGY_MODEL_HH

#include "arch/architecture.hh"

namespace sparseloop {

/** Fine-grained action kinds (Sec. 5.3.4). */
enum class ActionKind
{
    Read,
    Write,
    GatedRead,
    GatedWrite,
    MetadataRead,
    MetadataWrite,
    Compute,
    GatedCompute,
    Skipped,  ///< placeholder; always zero energy, zero cycles
};

/**
 * Per-action energy table derived from an architecture.
 */
class EnergyModel
{
  public:
    /**
     * @param gated_fraction energy of a gated action relative to the
     *        actual action (clock/data gating still burns some clock
     *        and leakage power).
     * @param metadata_bits_per_word width assumed for one metadata
     *        access when scaling metadata actions.
     */
    explicit EnergyModel(const Architecture &arch,
                         double gated_fraction = 0.12,
                         int metadata_bits_per_word = 8);

    /** Energy in pJ of one action at storage level @p level. */
    double storageEnergy(int level, ActionKind kind) const;

    /** Energy in pJ of one compute action. */
    double computeEnergy(ActionKind kind) const;

    double gatedFraction() const { return gated_fraction_; }
    int metadataBitsPerWord() const { return metadata_bits_per_word_; }

    /**
     * Reference per-access read energy in pJ for a storage level
     * (public 45nm-class numbers, scaled by capacity and word width).
     */
    static double referenceReadEnergy(const StorageLevelSpec &level);

    /** Reference MAC energy in pJ for a datapath width. */
    static double referenceMacEnergy(int datapath_bits);

  private:
    std::vector<double> read_pj_;
    std::vector<double> write_pj_;
    double mac_pj_ = 0.0;
    double gated_fraction_;
    int metadata_bits_per_word_;
    std::vector<int> word_bits_;
};

} // namespace sparseloop

#endif // SPARSELOOP_ARCH_ENERGY_MODEL_HH
