/**
 * @file
 * Architecture specification (Sec. 5.1): an ordered hierarchy of
 * storage levels (outermost / largest first, e.g. DRAM -> SMEM -> RF)
 * feeding an array of compute units. Each level carries capacity,
 * word width, bandwidth, and fanout attributes used by the dataflow
 * and micro-architecture modeling steps.
 */

#ifndef SPARSELOOP_ARCH_ARCHITECTURE_HH
#define SPARSELOOP_ARCH_ARCHITECTURE_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sparseloop {

/** Storage technology class, used by the energy model. */
enum class StorageClass
{
    DRAM,
    SRAM,
    RegFile,
};

/** One storage level of the hierarchy. */
struct StorageLevelSpec
{
    std::string name;
    StorageClass storage_class = StorageClass::SRAM;

    /** Capacity in data words; infinite for DRAM by default. */
    double capacity_words =
        std::numeric_limits<double>::infinity();

    /** Bits per data word. */
    int word_bits = 16;

    /**
     * Read+write bandwidth in words per cycle available to EACH
     * instance of this level.
     */
    double bandwidth_words_per_cycle =
        std::numeric_limits<double>::infinity();

    /** Maximum spatial fanout to the next-inner level (or compute). */
    std::int64_t fanout = 1;

    /**
     * Access granularity in words: storage is read/written in blocks
     * of this many words (segmented block accesses, Sec. 5.4). Word
     * counts are converted to ceil(words / block) block accesses for
     * bandwidth and energy; a sparse tile that shrinks below the block
     * granularity stops saving proportionally.
     */
    std::int64_t block_size_words = 1;

    /** Optional per-action energy overrides in pJ (negative = derive). */
    double read_energy_pj = -1.0;
    double write_energy_pj = -1.0;
};

/** The compute (MAC) level. */
struct ComputeSpec
{
    std::string name = "MAC";
    int datapath_bits = 16;
    /** Optional energy override in pJ (negative = derive). */
    double mac_energy_pj = -1.0;
};

/**
 * Architecture: storage levels ordered outermost (index 0) to
 * innermost, plus the compute level.
 */
class Architecture
{
  public:
    Architecture(std::string name, std::vector<StorageLevelSpec> levels,
                 ComputeSpec compute);

    const std::string &name() const { return name_; }
    int levelCount() const { return static_cast<int>(levels_.size()); }
    const StorageLevelSpec &level(int i) const { return levels_[i]; }
    StorageLevelSpec &level(int i) { return levels_[i]; }
    const std::vector<StorageLevelSpec> &levels() const { return levels_; }
    const ComputeSpec &compute() const { return compute_; }

    /** Index of a level by name; fatal when absent. */
    int levelIndex(const std::string &name) const;

    /** Innermost storage level index. */
    int innermost() const { return levelCount() - 1; }

    /**
     * Evaluation-cache identity: hashes every level and compute
     * attribute (capacities, word widths, bandwidths, fanouts, block
     * sizes, energy overrides) including level/compute names — they
     * are embedded in EvalResult level records, so renamed levels must
     * not share cache entries. Only the architecture's own display
     * name is excluded: two differently-named but otherwise identical
     * architectures share cached evaluations.
     */
    std::uint64_t signature() const;

    /** Maximum total compute units (product of all fanouts). */
    std::int64_t maxComputeUnits() const;

  private:
    std::string name_;
    std::vector<StorageLevelSpec> levels_;
    ComputeSpec compute_;
};

} // namespace sparseloop

#endif // SPARSELOOP_ARCH_ARCHITECTURE_HH
