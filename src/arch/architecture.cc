/**
 * @file
 * Architecture implementation.
 */

#include "arch/architecture.hh"

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace sparseloop {

Architecture::Architecture(std::string name,
                           std::vector<StorageLevelSpec> levels,
                           ComputeSpec compute)
    : name_(std::move(name)), levels_(std::move(levels)),
      compute_(std::move(compute))
{
    if (levels_.empty()) {
        SL_FATAL("architecture needs at least one storage level");
    }
    for (const auto &l : levels_) {
        if (l.fanout < 1) {
            SL_FATAL("level ", l.name, " has invalid fanout ", l.fanout);
        }
        if (l.word_bits < 1) {
            SL_FATAL("level ", l.name, " has invalid word width");
        }
        if (l.block_size_words < 1) {
            SL_FATAL("level ", l.name, " has invalid block size");
        }
    }
}

int
Architecture::levelIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        if (levels_[i].name == name) {
            return static_cast<int>(i);
        }
    }
    SL_FATAL("unknown storage level '", name, "' in architecture ",
             name_);
}

std::int64_t
Architecture::maxComputeUnits() const
{
    std::int64_t units = 1;
    for (const auto &l : levels_) {
        units *= l.fanout;
    }
    return units;
}


std::uint64_t
Architecture::signature() const
{
    std::uint64_t h = math::hashCombine(math::kHashSeed, levels_.size());
    for (const StorageLevelSpec &l : levels_) {
        // Level names are part of the identity: they surface in
        // EvalResult level records and invalid-mapping reasons.
        h = math::hashString(h, l.name);
        h = math::hashCombine(h, static_cast<std::uint64_t>(l.storage_class));
        h = math::hashDouble(h, l.capacity_words);
        h = math::hashCombine(h, static_cast<std::uint64_t>(l.word_bits));
        h = math::hashDouble(h, l.bandwidth_words_per_cycle);
        h = math::hashCombine(h, static_cast<std::uint64_t>(l.fanout));
        h = math::hashCombine(h,
                              static_cast<std::uint64_t>(l.block_size_words));
        h = math::hashDouble(h, l.read_energy_pj);
        h = math::hashDouble(h, l.write_energy_pj);
    }
    h = math::hashString(h, compute_.name);
    h = math::hashCombine(h,
                          static_cast<std::uint64_t>(compute_.datapath_bits));
    return math::hashDouble(h, compute_.mac_energy_pj);
}

} // namespace sparseloop
