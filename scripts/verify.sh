#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, 27 test
# binaries, 18 benches, 5 examples), run the full CTest suite, and —
# when doxygen is installed — run the API-docs check (warnings in
# src/model and src/mapper are errors, mirroring the CI docs job).
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j

if command -v doxygen >/dev/null 2>&1; then
    echo "== docs check (doxygen, warnings are errors) =="
    (cd "${repo_root}" && doxygen docs/Doxyfile)
else
    echo "== docs check skipped: doxygen not installed =="
fi
