#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, test
# binaries, benches, examples), run the full CTest suite, smoke-run
# the search-strategy, pareto-front, and mapspace-pruning ablations,
# run the evaluation-daemon smoke (serve over TCP, snapshot, restart,
# assert warm cache hits), check intra-repo markdown links, and —
# when doxygen is installed — run the API-docs check (warnings in
# src/model, src/mapper, and src/common are errors, mirroring the CI
# docs job). A second explicit Release (-O2/NDEBUG) build-and-ctest
# pass runs alongside the default config; skip it with
# SPARSELOOP_SKIP_RELEASE=1. The engine perf gate (Release
# microbenchmark vs the committed bench/baselines/BENCH_engine.json)
# can be skipped with SPARSELOOP_SKIP_PERF=1. Set SPARSELOOP_TSAN=1
# to additionally build the concurrency suites under ThreadSanitizer
# and run them (mirrors the CI tsan job; off by default because the
# instrumented build roughly doubles verify time).
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j

echo "== search-strategy ablation smoke (valid-rate ~= 1.0 under constraints) =="
"${build_dir}/bench/ablation_search_strategies"

echo "== pareto-front ablation smoke (hypervolume per strategy, front determinism) =="
"${build_dir}/bench/ablation_pareto_front"

echo "== mapspace pruning ablation smoke (per-pass sizes, losslessness) =="
"${build_dir}/bench/ablation_mapspace_pruning"

echo "== daemon smoke (serve, evaluate, snapshot, restart, warm hits) =="
"${repo_root}/scripts/daemon_smoke.sh" "${build_dir}"

if [[ "${SPARSELOOP_SKIP_RELEASE:-0}" != "1" ]]; then
    echo "== Release (-O2/NDEBUG) build-and-ctest =="
    release_dir="${build_dir}-release"
    cmake -B "${release_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release
    cmake --build "${release_dir}" -j
    ctest --test-dir "${release_dir}" --output-on-failure -j
    echo "== mapspace pruning ablation (Release, billion-point sizes) =="
    "${release_dir}/bench/ablation_mapspace_pruning"
fi

if [[ "${SPARSELOOP_TSAN:-0}" == "1" ]]; then
    echo "== ThreadSanitizer: pool/batch/differential/search suites =="
    tsan_dir="${build_dir}-tsan"
    cmake -B "${tsan_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Debug \
        -DSPARSELOOP_BUILD_BENCH=OFF \
        -DSPARSELOOP_BUILD_EXAMPLES=OFF \
        -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
    cmake --build "${tsan_dir}" -j
    # Serial on purpose: TSan instrumentation is memory-hungry, and a
    # bare -j before -R makes older ctest eat the filter.
    ctest --test-dir "${tsan_dir}" --output-on-failure \
        -R 'test_(thread_pool|batch_evaluator|eval_cache|engine_differential|parallel_mapper|search_strategy|pareto_search|service_server|cache_persistence)'
fi

if [[ "${SPARSELOOP_SKIP_PERF:-0}" != "1" ]]; then
    echo "== engine perf gate (fresh run vs committed baseline) =="
    "${repo_root}/scripts/run_perf.sh" "${build_dir}-perf/BENCH_engine.json" \
        "${build_dir}-perf"
    python3 "${repo_root}/scripts/check_bench_regression.py" \
        "${build_dir}-perf/BENCH_engine.json" \
        --baseline "${repo_root}/bench/baselines/BENCH_engine.json"
else
    echo "== engine perf gate skipped (SPARSELOOP_SKIP_PERF=1) =="
fi

echo "== docs link check (intra-repo markdown links) =="
"${repo_root}/scripts/check_docs_links.sh"

if command -v doxygen >/dev/null 2>&1; then
    echo "== docs check (doxygen, warnings are errors) =="
    (cd "${repo_root}" && doxygen docs/Doxyfile)
else
    echo "== docs check skipped: doxygen not installed =="
fi
