#!/usr/bin/env bash
# Tier-1 verification: configure, build everything (library, 25 test
# binaries, 17 benches, 5 examples), and run the full CTest suite.
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" --output-on-failure -j
