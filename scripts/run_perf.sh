#!/usr/bin/env bash
# Build the engine microbenchmark in Release (-O2/NDEBUG) and emit a
# fresh machine-readable BENCH_engine.json. The committed baseline
# lives at bench/baselines/BENCH_engine.json; compare a fresh run
# against it with scripts/check_bench_regression.py, and refresh the
# baseline by pointing this script at that path (see
# docs/benchmarks.md for the full procedure).
# Usage: scripts/run_perf.sh [output.json] [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_json="${1:-${repo_root}/BENCH_engine.json}"
build_dir="${2:-${repo_root}/build-perf}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j --target perf_engine

"${build_dir}/bench/perf_engine" "${out_json}"
echo "wrote ${out_json}"
