#!/usr/bin/env bash
# Fail when an intra-repo markdown link points at a missing file.
#
# Scans every tracked *.md file for inline links ([text](target)) and
# checks that each relative target exists, resolved against the linking
# file's directory. Skipped targets: absolute URLs (scheme://),
# mailto:, pure #anchors, and targets with neither a '.' nor a '/'
# (code-ish bracket-paren collisions inside prose, e.g. `a[0](x)`).
# Anchors are stripped before the existence check, so `file.md#section`
# validates `file.md`.
#
# Usage: scripts/check_docs_links.sh   (exits 1 on any broken link)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

fail=0
while IFS= read -r md; do
    dir="$(dirname "${md}")"
    # Pull out every](target) group; tolerate files with no links.
    while IFS= read -r target; do
        [[ -z "${target}" ]] && continue
        case "${target}" in
            *://*|mailto:*|\#*) continue ;;
        esac
        # Strip a trailing #anchor and an optional "title".
        target="${target%%#*}"
        target="${target%% \"*}"
        [[ -z "${target}" ]] && continue
        # Heuristic: real intra-repo targets contain a dot or a slash.
        if [[ "${target}" != *.* && "${target}" != */* ]]; then
            continue
        fi
        if [[ ! -e "${dir}/${target}" && ! -e "${target}" ]]; then
            echo "BROKEN LINK: ${md}: (${target})"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "${md}" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './build*')

if [[ "${fail}" -ne 0 ]]; then
    echo "docs link check failed (see BROKEN LINK lines above)"
    exit 1
fi
echo "docs link check passed"
