#!/usr/bin/env bash
# End-to-end smoke of the evaluation daemon: start sparseloopd on an
# ephemeral port with persistence, evaluate through sparseloop_cli,
# shut it down (snapshotting), restart over the same snapshot, and
# assert the restarted daemon serves the replayed evaluation from its
# restored cache (nonzero hits, zero misses).
# Usage: scripts/daemon_smoke.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
cli="${build_dir}/tools/sparseloop_cli"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    if [[ -n "${server_pid}" ]] && kill -0 "${server_pid}" 2>/dev/null; then
        kill "${server_pid}" 2>/dev/null || true
        wait "${server_pid}" 2>/dev/null || true
    fi
    rm -rf "${workdir}"
}
trap cleanup EXIT

snapshot="${workdir}/cache.snap"
port_file="${workdir}/port"

wait_for_port_file() {
    for _ in $(seq 1 100); do
        if [[ -s "${port_file}" ]]; then
            return 0
        fi
        sleep 0.1
    done
    echo "daemon never wrote ${port_file}" >&2
    return 1
}

echo "-- cold start: serve, evaluate, search, snapshot on shutdown"
"${cli}" serve --port 0 --port-file "${port_file}" \
    --snapshot "${snapshot}" > "${workdir}/serve1.log" 2>&1 &
server_pid=$!
wait_for_port_file
port="$(cat "${port_file}")"

"${cli}" contexts --port "${port}"
"${cli}" eval --context bitmask --port "${port}"
"${cli}" eval --context coord-list --port "${port}"
"${cli}" search --context dense-baseline --samples 100 --port "${port}"
cold_stats="$("${cli}" stats --port "${port}")"
echo "cold: ${cold_stats}"
grep -q "restored_entries=0" <<< "${cold_stats}" || {
    echo "FAIL: cold daemon claims restored entries" >&2; exit 1; }

"${cli}" shutdown --port "${port}"
wait "${server_pid}"
server_pid=""
[[ -s "${snapshot}" ]] || {
    echo "FAIL: no snapshot written at shutdown" >&2; exit 1; }

echo "-- warm restart: same snapshot, replay must hit the cache"
rm -f "${port_file}"
"${cli}" serve --port 0 --port-file "${port_file}" \
    --snapshot "${snapshot}" > "${workdir}/serve2.log" 2>&1 &
server_pid=$!
wait_for_port_file
port="$(cat "${port_file}")"

"${cli}" eval --context bitmask --port "${port}"
warm_stats="$("${cli}" stats --port "${port}")"
echo "warm: ${warm_stats}"

grep -q "result_misses=0 " <<< "${warm_stats}" || {
    echo "FAIL: warm replay missed the restored cache" >&2; exit 1; }
grep -Eq "result_hits=[1-9]" <<< "${warm_stats}" || {
    echo "FAIL: warm replay produced no cache hits" >&2; exit 1; }
grep -q "restored_entries=0" <<< "${warm_stats}" && {
    echo "FAIL: warm daemon restored nothing" >&2; exit 1; }

"${cli}" shutdown --port "${port}"
wait "${server_pid}"
server_pid=""

echo "daemon smoke OK"
