#!/usr/bin/env python3
"""Perf-regression gate for the engine microbenchmark.

Compares a fresh BENCH_engine.json (produced by scripts/run_perf.sh)
against the committed baseline and fails when the engine's speed
story regresses:

  * every baseline workload must still be measured;
  * the cold three-step engine must stay >= --min-speedup times the
    frozen naive reference (the campaign's committed floor);
  * the per-workload speedup-vs-reference must not fall more than
    --ratio-tolerance below the committed baseline's ratio;
  * batch throughput at N > 1 threads must not fall below the same
    run's 1-thread throughput by more than --scaling-tolerance (the
    persistent pool's "parallelism never hurts" guarantee). Rows the
    harness marked advisory (thread count above the measuring host's
    hardware concurrency) are reported but never gated.

Ratios are compared rather than raw evals/sec because both sides of
a ratio are measured in the same process on the same machine, so the
comparison is meaningful across hosts; absolute rates are only
reported (or gated with --strict-absolute, for same-machine runs).
The thread-scaling gate likewise compares rows within the fresh run
only; baseline batch rates are shown for information, matched by
their "threads" field (never by array position).

Exit code 0 = pass, 1 = regression, 2 = usage/schema error.
Uses only the Python standard library.
"""

import argparse
import json
import sys

SCHEMA = "sparseloop-bench-engine/v2"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema {doc.get('schema')!r}, "
              f"expected {SCHEMA!r} (refresh the file with "
              f"scripts/run_perf.sh)", file=sys.stderr)
        sys.exit(2)
    return doc


def get(obj, key, ctx):
    """Field lookup that dies with a usable message, not a KeyError."""
    if not isinstance(obj, dict) or key not in obj:
        print(f"error: {ctx}: missing field {key!r} (stale or "
              f"hand-edited file? refresh with scripts/run_perf.sh)",
              file=sys.stderr)
        sys.exit(2)
    return obj[key]


def by_name(doc, path):
    return {get(w, "name", f"{path}: workloads[{i}]"): w
            for i, w in enumerate(doc.get("workloads", []))}


def batch_by_threads(workload, ctx):
    """Batch rows keyed by their thread count, not array position."""
    rows = {}
    for i, row in enumerate(workload.get("batch", [])):
        rows[get(row, "threads", f"{ctx}: batch[{i}]")] = row
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="fresh BENCH_engine.json to check")
    ap.add_argument("--baseline",
                    default="bench/baselines/BENCH_engine.json",
                    help="committed baseline (default: %(default)s)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required cold engine/reference speedup "
                         "(default: %(default)s)")
    ap.add_argument("--ratio-tolerance", type=float, default=0.35,
                    help="allowed fractional drop of the speedup ratio "
                         "vs the baseline; generous because shared "
                         "runners are noisy even with the harness's "
                         "best-of-3 interleaved sampling "
                         "(default: %(default)s)")
    ap.add_argument("--scaling-tolerance", type=float, default=0.10,
                    help="allowed fractional shortfall of N-thread "
                         "batch throughput vs the same run's 1-thread "
                         "row, for non-advisory rows "
                         "(default: %(default)s)")
    ap.add_argument("--abs-tolerance", type=float, default=0.30,
                    help="allowed fractional drop of absolute cold "
                         "evals/sec, only gated with --strict-absolute "
                         "(default: %(default)s)")
    ap.add_argument("--strict-absolute", action="store_true",
                    help="also fail on absolute evals/sec drops "
                         "(same-machine comparisons only)")
    args = ap.parse_args()

    fresh = by_name(load(args.fresh), args.fresh)
    base = by_name(load(args.baseline), args.baseline)

    failures = []
    notes = []

    missing = sorted(set(base) - set(fresh))
    if missing:
        failures.append(f"workloads missing from fresh run: {missing}")

    for name in sorted(set(base) & set(fresh)):
        f_cold = get(fresh[name], "cold", f"{args.fresh}: {name}")
        b_cold = get(base[name], "cold", f"{args.baseline}: {name}")
        f_ratio = get(f_cold, "speedup_vs_reference",
                      f"{args.fresh}: {name}.cold")
        b_ratio = get(b_cold, "speedup_vs_reference",
                      f"{args.baseline}: {name}.cold")

        if f_ratio < args.min_speedup:
            failures.append(
                f"{name}: cold speedup vs reference {f_ratio:.2f}x "
                f"below the committed floor {args.min_speedup:.2f}x")
        floor = b_ratio * (1.0 - args.ratio_tolerance)
        if f_ratio < floor:
            failures.append(
                f"{name}: cold speedup {f_ratio:.2f}x regressed more "
                f"than {args.ratio_tolerance:.0%} below baseline "
                f"{b_ratio:.2f}x (floor {floor:.2f}x)")

        f_abs = get(f_cold, "engine_evals_per_sec",
                    f"{args.fresh}: {name}.cold")
        b_abs = get(b_cold, "engine_evals_per_sec",
                    f"{args.baseline}: {name}.cold")
        abs_floor = b_abs * (1.0 - args.abs_tolerance)
        line = (f"{name}: cold {f_abs:,.0f}/s (baseline {b_abs:,.0f}/s), "
                f"speedup {f_ratio:.2f}x (baseline {b_ratio:.2f}x)")
        if f_abs < abs_floor and args.strict_absolute:
            failures.append(
                f"{name}: cold {f_abs:,.0f}/s below absolute floor "
                f"{abs_floor:,.0f}/s (--strict-absolute)")
        elif f_abs < abs_floor:
            line += "  [absolute drop, not gated across machines]"
        notes.append(line)

        # Thread scaling: every non-advisory N>1-thread row of the
        # fresh run must keep up with its own 1-thread row. Advisory
        # rows (threads > host cores when measured) are informational.
        f_batch = batch_by_threads(fresh[name], f"{args.fresh}: {name}")
        b_batch = batch_by_threads(base[name], f"{args.baseline}: {name}")
        if f_batch:
            if 1 not in f_batch:
                failures.append(
                    f"{name}: batch section has no 1-thread row to "
                    f"anchor the scaling gate")
                continue
            one_rate = get(f_batch[1], "evals_per_sec",
                           f"{args.fresh}: {name}.batch[threads=1]")
            scale_floor = one_rate * (1.0 - args.scaling_tolerance)
            for threads in sorted(f_batch):
                if threads == 1:
                    continue
                row_ctx = f"{args.fresh}: {name}.batch[threads={threads}]"
                rate = get(f_batch[threads], "evals_per_sec", row_ctx)
                advisory = bool(f_batch[threads].get("advisory"))
                line = (f"{name}: batch @{threads}t {rate:,.0f}/s "
                        f"({rate / one_rate:.2f}x vs 1t)")
                b_row = b_batch.get(threads)
                if b_row is not None:
                    b_rate = get(b_row, "evals_per_sec",
                                 f"{args.baseline}: {name}."
                                 f"batch[threads={threads}]")
                    line += f" [baseline {b_rate:,.0f}/s]"
                if advisory:
                    line += "  [advisory: threads > host cores, not gated]"
                elif rate < scale_floor:
                    failures.append(
                        f"{name}: batch @{threads}t {rate:,.0f}/s fell "
                        f"more than {args.scaling_tolerance:.0%} below "
                        f"the 1-thread rate {one_rate:,.0f}/s "
                        f"(floor {scale_floor:,.0f}/s)")
                notes.append(line)

    for line in notes:
        print(line)
    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
