#!/usr/bin/env python3
"""Perf-regression gate for the engine microbenchmark.

Compares a fresh BENCH_engine.json (produced by scripts/run_perf.sh)
against the committed baseline and fails when the engine's speed
story regresses:

  * every baseline workload must still be measured;
  * the cold three-step engine must stay >= --min-speedup times the
    frozen naive reference (the campaign's committed floor);
  * the per-workload speedup-vs-reference must not fall more than
    --ratio-tolerance below the committed baseline's ratio.

Ratios are compared rather than raw evals/sec because both sides of
a ratio are measured in the same process on the same machine, so the
comparison is meaningful across hosts; absolute rates are only
reported (or gated with --strict-absolute, for same-machine runs).

Exit code 0 = pass, 1 = regression, 2 = usage/schema error.
Uses only the Python standard library.
"""

import argparse
import json
import sys

SCHEMA = "sparseloop-bench-engine/v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        print(f"error: {path}: schema {doc.get('schema')!r}, "
              f"expected {SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def by_name(doc):
    return {w["name"]: w for w in doc.get("workloads", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="fresh BENCH_engine.json to check")
    ap.add_argument("--baseline",
                    default="bench/baselines/BENCH_engine.json",
                    help="committed baseline (default: %(default)s)")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required cold engine/reference speedup "
                         "(default: %(default)s)")
    ap.add_argument("--ratio-tolerance", type=float, default=0.35,
                    help="allowed fractional drop of the speedup ratio "
                         "vs the baseline; generous because shared "
                         "runners are noisy even with the harness's "
                         "best-of-3 interleaved sampling "
                         "(default: %(default)s)")
    ap.add_argument("--abs-tolerance", type=float, default=0.30,
                    help="allowed fractional drop of absolute cold "
                         "evals/sec, only gated with --strict-absolute "
                         "(default: %(default)s)")
    ap.add_argument("--strict-absolute", action="store_true",
                    help="also fail on absolute evals/sec drops "
                         "(same-machine comparisons only)")
    args = ap.parse_args()

    fresh = by_name(load(args.fresh))
    base = by_name(load(args.baseline))

    failures = []
    notes = []

    missing = sorted(set(base) - set(fresh))
    if missing:
        failures.append(f"workloads missing from fresh run: {missing}")

    for name in sorted(set(base) & set(fresh)):
        f_cold = fresh[name]["cold"]
        b_cold = base[name]["cold"]
        f_ratio = f_cold["speedup_vs_reference"]
        b_ratio = b_cold["speedup_vs_reference"]

        if f_ratio < args.min_speedup:
            failures.append(
                f"{name}: cold speedup vs reference {f_ratio:.2f}x "
                f"below the committed floor {args.min_speedup:.2f}x")
        floor = b_ratio * (1.0 - args.ratio_tolerance)
        if f_ratio < floor:
            failures.append(
                f"{name}: cold speedup {f_ratio:.2f}x regressed more "
                f"than {args.ratio_tolerance:.0%} below baseline "
                f"{b_ratio:.2f}x (floor {floor:.2f}x)")

        f_abs = f_cold["engine_evals_per_sec"]
        b_abs = b_cold["engine_evals_per_sec"]
        abs_floor = b_abs * (1.0 - args.abs_tolerance)
        line = (f"{name}: cold {f_abs:,.0f}/s (baseline {b_abs:,.0f}/s), "
                f"speedup {f_ratio:.2f}x (baseline {b_ratio:.2f}x)")
        if f_abs < abs_floor and args.strict_absolute:
            failures.append(
                f"{name}: cold {f_abs:,.0f}/s below absolute floor "
                f"{abs_floor:,.0f}/s (--strict-absolute)")
        elif f_abs < abs_floor:
            line += "  [absolute drop, not gated across machines]"
        notes.append(line)

    for line in notes:
        print(line)
    if failures:
        print()
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
